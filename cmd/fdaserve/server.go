package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/runstore"
)

// server is the experiment service: it accepts run specs over HTTP,
// executes them through the registry's store-aware scheduler, and
// serves status, records and the cached-run catalog. Identical specs
// dedupe onto one job, and every completed grid cell lands in the run
// registry, so resubmitting a finished (or killed) spec costs only the
// cells the store does not yet hold.
type server struct {
	store *runstore.Store
	// jobs is the per-sweep cell parallelism (par.Resolve convention).
	jobs int

	mu     sync.Mutex
	byID   map[string]*job
	byKey  map[string]*job
	order  []string
	nextID int
}

func newServer(store *runstore.Store, jobs int) *server {
	return &server{
		store: store,
		jobs:  jobs,
		byID:  map[string]*job{},
		byKey: map[string]*job{},
	}
}

// job is one submitted sweep.
type job struct {
	ID         string
	Experiment string
	Scale      string
	Seed       uint64

	stats *experiments.SweepStats
	out   *lockedBuffer
	done  chan struct{}

	mu     sync.Mutex
	status string // "running", "done" or "failed"
	errMsg string
	result any
}

// jobView is the status representation shared by every endpoint.
type jobView struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	// Cells/Cached/Executed track grid progress live while running.
	Cells    int64 `json:"cells"`
	Cached   int64 `json:"cached"`
	Executed int64 `json:"executed"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID: j.ID, Experiment: j.Experiment, Scale: j.Scale, Seed: j.Seed,
		Status: j.status, Error: j.errMsg,
		Cells:    j.stats.Cells.Load(),
		Cached:   j.stats.Cached.Load(),
		Executed: j.stats.Executed.Load(),
	}
}

// routes builds the API surface:
//
//	GET  /healthz                 liveness
//	GET  /v1/version              build information
//	GET  /v1/experiments          registered runners
//	GET  /v1/store                cached-run manifests
//	GET  /v1/runs                 submitted jobs
//	POST /v1/runs                 submit {"experiment","scale","seed"}
//	GET  /v1/runs/{id}            poll one job
//	GET  /v1/runs/{id}/records    fetch a finished job's records
//	GET  /v1/runs/{id}/output     fetch the rendered tables/plots
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": buildinfo.String("fdaserve")})
	})
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/store", s.handleStore)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /v1/runs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /v1/runs/{id}/output", s.handleOutput)
	return mux
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name     string `json:"name"`
		Artifact string `json:"artifact"`
	}
	var out []entry
	for _, r := range experiments.Runners() {
		out = append(out, entry{r.Name, r.Artifact})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStore(w http.ResponseWriter, r *http.Request) {
	ms, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ms == nil {
		ms = []runstore.Manifest{}
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.byID[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

// submitRequest is the POST /v1/runs body.
type submitRequest struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Scale == "" {
		req.Scale = "quick"
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if _, ok := experiments.Lookup(req.Experiment); !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown experiment %q (have %s)", req.Experiment, strings.Join(experiments.Names(), ", ")))
		return
	}
	scale, err := experiments.ParseScale(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	key := fmt.Sprintf("%s|%s|%d", req.Experiment, req.Scale, req.Seed)
	s.mu.Lock()
	if j, ok := s.byKey[key]; ok {
		// Running and completed jobs dedupe; a failed job gives way to a
		// retry (which re-executes only the cells the registry lacks).
		if j.view().Status != "failed" {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, j.view())
			return
		}
	}
	s.nextID++
	j := &job{
		ID:         fmt.Sprintf("r%d", s.nextID),
		Experiment: req.Experiment,
		Scale:      req.Scale,
		Seed:       req.Seed,
		stats:      &experiments.SweepStats{},
		out:        &lockedBuffer{},
		done:       make(chan struct{}),
		status:     "running",
	}
	s.byID[j.ID] = j
	s.byKey[key] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	go s.execute(j, scale)
	writeJSON(w, http.StatusAccepted, j.view())
}

// execute runs the sweep; the store-aware scheduler inside the runner
// serves every already-cached cell from disk.
func (s *server) execute(j *job, scale experiments.Scale) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			j.status, j.errMsg = "failed", fmt.Sprintf("panic: %v", r)
			j.mu.Unlock()
		}
	}()
	res, err := experiments.Run(j.Experiment, experiments.Options{
		Scale: scale,
		Seed:  j.Seed,
		Out:   j.out,
		Jobs:  s.jobs,
		Store: s.store,
		Stats: j.stats,
	})
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status, j.errMsg = "failed", err.Error()
		return
	}
	j.status, j.result = "done", res
}

func (s *server) job(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[r.PathValue("id")]
	return j, ok
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	j.mu.Lock()
	status, result := j.status, j.result
	j.mu.Unlock()
	switch status {
	case "running":
		writeError(w, http.StatusConflict, "run still executing; poll /v1/runs/"+j.ID)
	case "failed":
		writeError(w, http.StatusConflict, "run failed; see /v1/runs/"+j.ID)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "records": result})
	}
}

func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, j.out.String())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// lockedBuffer lets status endpoints read a job's rendered output while
// the runner is still writing it.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}
