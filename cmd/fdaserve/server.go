package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/workload"
)

// server is the experiment service: it accepts run specs over HTTP,
// executes them through the registry's store-aware scheduler, and
// serves status, records, live event streams and the cached-run
// catalog. Identical specs dedupe onto one job, every completed grid
// cell lands in the run registry, and every job runs under its own
// context — so a run can be cancelled mid-flight (DELETE), watched live
// (SSE), and resumed after an interruption at the cost of only the work
// the store does not yet hold.
type server struct {
	store *runstore.Store
	// jobs is the per-sweep cell parallelism (par.Resolve convention).
	jobs int
	// fabricAddr, when non-empty, is the TCP-fabric listen address for
	// distributed train jobs (`fdarun -worker` processes connect here).
	fabricAddr string
	// baseCtx parents every job context; cancelling it (graceful
	// shutdown) cancels all in-flight runs.
	baseCtx context.Context
	// journal records job status transitions in the store directory.
	journal *journal
	// warm enables trajectory-prefix snapshot reuse inside sweep jobs.
	warm bool
	// accessLog, when non-nil, receives one structured line per HTTP
	// request from the instrument middleware.
	accessLog *slog.Logger
	// pprof mounts net/http/pprof under /debug/pprof/ when set.
	pprof bool
	// name is the replica identity (-name) reported on /v1/metrics and
	// /v1/healthz so a gateway operator can tell replicas apart.
	name string
	// maxQueue caps in-flight (admitted, not yet terminal) jobs; above
	// it new submissions are rejected with 503 + Retry-After instead of
	// queuing unboundedly. 0 disables the cap.
	maxQueue int
	// draining, when set (POST /v1/drain), refuses new submissions with
	// 503 while in-flight jobs run to completion — the graceful way to
	// take a replica out of a gateway rotation. DELETE /v1/drain
	// re-admits.
	draining atomic.Bool
	// active counts in-flight jobs for the admission cap. Incremented
	// under s.mu at creation; decremented lock-free at the terminal
	// transition, so admission may briefly over-refuse but never
	// over-admits.
	active atomic.Int64
	// recorder, when non-nil, journals workload-relevant requests to a
	// tracev1 file in admission order (fdaserve -record, record.go).
	recorder *workload.TraceWriter
	// wg tracks in-flight job goroutines for shutdown draining.
	wg sync.WaitGroup
	// started anchors the /v1/metrics uptime.
	started time.Time
	// bytesSimulated sums the communication accounting of every finished
	// job (training Results and sweep records).
	bytesSimulated atomic.Int64

	mu     sync.Mutex
	byID   map[string]*job
	byKey  map[string]*job
	order  []string
	nextID int
}

func newServer(store *runstore.Store, jobs int, baseCtx context.Context) *server {
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	return &server{
		store:   store,
		jobs:    jobs,
		baseCtx: baseCtx,
		journal: openJournal(store.Dir()),
		started: time.Now(),
		byID:    map[string]*job{},
		byKey:   map[string]*job{},
	}
}

// drain waits for every in-flight job to finish (used after the base
// context is cancelled) and flushes the journal.
func (s *server) drain() {
	s.wg.Wait()
	s.journal.close()
}

// Job status values. Transitions: running → done | failed | cancelled.
// "interrupted" is assigned only at startup, to journaled jobs a
// previous server process left mid-run; like failed and cancelled it
// gives way to a resubmission of the same spec, which resumes from the
// run registry or the session checkpoint.
const (
	statusRunning     = "running"
	statusDone        = "done"
	statusFailed      = "failed"
	statusCancelled   = "cancelled"
	statusInterrupted = "interrupted"
)

// job is one submitted run: a figure sweep or a single training session.
type job struct {
	ID         string
	Kind       string // "sweep" or "train"
	Experiment string // sweep: experiment name; train: model name
	Scale      string
	Seed       uint64
	key        string

	stats  *experiments.SweepStats
	out    *lockedBuffer
	done   chan struct{}
	cancel context.CancelFunc
	events *broker

	// Train-job live counters (atomics so status polls don't contend
	// with the stepping goroutine).
	steps   atomic.Int64
	syncs   atomic.Int64
	resumed atomic.Bool

	// admittedNs/startedNs are monotonic offsets from server start:
	// admittedNs is stamped at creation, startedNs when an execute
	// goroutine picks the job up (0 = still queued). Their difference
	// feeds fdaserve_job_queue_wait_seconds and makes the /v1/metrics
	// queued count truthful instead of hardwired to zero.
	admittedNs int64
	startedNs  atomic.Int64

	mu     sync.Mutex
	status string
	errMsg string
	result any
	// fabricAddr is the coordinator address of a distributed train job,
	// set once its listener is bound (workers connect here).
	fabricAddr string
}

// jobView is the status representation shared by every endpoint.
type jobView struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Experiment string `json:"experiment"`
	Scale      string `json:"scale,omitempty"`
	Seed       uint64 `json:"seed"`
	Status     string `json:"status"`
	Error      string `json:"error,omitempty"`
	// Cells/Cached/Executed track grid progress live while a sweep runs.
	Cells    int64 `json:"cells,omitempty"`
	Cached   int64 `json:"cached,omitempty"`
	Executed int64 `json:"executed,omitempty"`
	// SnapshotHits/StepsSaved count a sweep's warm starts: cells that
	// restored a trajectory-prefix snapshot, and the training steps those
	// restores skipped.
	SnapshotHits int64 `json:"snapshot_hits,omitempty"`
	StepsSaved   int64 `json:"steps_saved,omitempty"`
	// Steps/Syncs track a training session live; Resumed reports that it
	// continued from a checkpoint of an earlier interrupted submission.
	Steps   int64 `json:"steps,omitempty"`
	Syncs   int64 `json:"syncs,omitempty"`
	Resumed bool  `json:"resumed,omitempty"`
	// FabricAddr is the coordinator address of a distributed train job —
	// the endpoint `fdarun -worker -connect` processes join.
	FabricAddr string `json:"fabric_addr,omitempty"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID: j.ID, Kind: j.Kind, Experiment: j.Experiment, Scale: j.Scale, Seed: j.Seed,
		Status: j.status, Error: j.errMsg, FabricAddr: j.fabricAddr,
	}
	if j.stats != nil {
		v.Cells = j.stats.Cells.Load()
		v.Cached = j.stats.Cached.Load()
		v.Executed = j.stats.Executed.Load()
		v.SnapshotHits = j.stats.SnapshotHits.Load()
		v.StepsSaved = j.stats.StepsSaved.Load()
	}
	if j.Kind == "train" {
		v.Steps = j.steps.Load()
		v.Syncs = j.syncs.Load()
		v.Resumed = j.resumed.Load()
	}
	return v
}

// markStarted stamps the moment an execute goroutine picked the job up
// and feeds the admission→start interval to the queue-wait histogram.
func (s *server) markStarted(j *job) {
	now := int64(time.Since(s.started))
	j.startedNs.Store(now)
	jobQueueWait.Observe(now - j.admittedNs)
}

// setStatus records a terminal transition and journals it.
func (s *server) setStatus(j *job, status, errMsg string, result any) {
	j.mu.Lock()
	j.status, j.errMsg = status, errMsg
	if result != nil {
		j.result = result
	}
	j.mu.Unlock()
	if status == statusDone && result != nil {
		s.bytesSimulated.Add(simulatedBytes(result))
	}
	if status != statusRunning {
		// Terminal transition: the job leaves the admission-cap window.
		// setStatus runs exactly once per executed job (each execute
		// goroutine ends in a single switch arm).
		s.active.Add(-1)
	}
	if st := j.startedNs.Load(); status != statusRunning && st != 0 {
		jobRunSeconds(j.Kind).Observe(int64(time.Since(s.started)) - st)
	}
	s.journal.record(j.view(), j.key)
}

// simulatedBytes extracts the communication accounting of a finished
// job's result for the /v1/metrics aggregate. Sweep records with
// nested accuracy targets share one training trajectory whose byte
// counts are cumulative, so each grid cell contributes its maximum
// CommGB once rather than the sum over targets. Unknown record shapes
// contribute nothing.
func simulatedBytes(result any) int64 {
	maxPerCell := map[string]float64{}
	cell := func(key string, gb float64) {
		if gb > maxPerCell[key] {
			maxPerCell[key] = gb
		}
	}
	switch r := result.(type) {
	case core.Result:
		return r.CommBytes
	case []experiments.Record:
		for _, rec := range r {
			cell(fmt.Sprintf("%s|%s|%s|%s|%d|%g", rec.Figure, rec.Model, rec.Het, rec.Strategy, rec.K, rec.Theta), rec.CommGB)
		}
	case []experiments.NetRecord:
		for _, rec := range r {
			cell(fmt.Sprintf("%s|%s|%s|%d|%g", rec.Scenario, rec.Model, rec.Strategy, rec.K, rec.Theta), rec.CommGB)
		}
	default:
		return 0
	}
	// Sum in sorted key order: float addition is not associative, and the
	// aggregate feeds a metrics endpoint that should be byte-stable across
	// restarts of the same job history.
	keys := make([]string, 0, len(maxPerCell))
	for k := range maxPerCell {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var gb float64
	for _, k := range keys {
		gb += maxPerCell[k]
	}
	return int64(gb * 1e9)
}

// routes builds the API surface:
//
//	GET    /healthz                 liveness (bare text)
//	GET    /metrics                 Prometheus text exposition
//	GET    /v1/healthz              liveness (JSON)
//	GET    /v1/metrics              job counts, admission headroom, telemetry snapshot
//	GET    /v1/version              build information
//	POST   /v1/drain                stop admitting new jobs (for gateway rotation)
//	DELETE /v1/drain                resume admitting
//	GET    /v1/experiments          registered runners
//	GET    /v1/store                cached-run manifests
//	GET    /v1/runs                 submitted jobs
//	POST   /v1/runs                 submit a sweep {"experiment","scale","seed"}
//	POST   /v1/train                submit a training session (see trainRequest)
//	GET    /v1/runs/{id}            poll one job
//	DELETE /v1/runs/{id}            cancel one job (it becomes resumable)
//	GET    /v1/runs/{id}/events     live progress as Server-Sent Events
//	GET    /v1/runs/{id}/records    fetch a finished job's records
//	GET    /v1/runs/{id}/output     fetch the rendered tables/plots
//
// With -pprof, net/http/pprof is additionally mounted under
// /debug/pprof/. Every route runs behind the instrument middleware
// (obs.go): per-route latency histograms, status counters, access log.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": buildinfo.String("fdaserve")})
	})
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("DELETE /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/store", s.handleStore)
	mux.HandleFunc("GET /v1/runs", s.handleListRuns)
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("POST /v1/train", s.handleTrain)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleRun)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /v1/runs/{id}/output", s.handleOutput)
	return s.instrument(s.record(mux))
}

// handleHealthz implements GET /v1/healthz: a JSON liveness probe (the
// bare-text /healthz is kept for load balancers that predate the v1
// surface).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"status":  status,
		"replica": s.name,
		"version": buildinfo.String("fdaserve"),
	})
}

// metricsView is the GET /v1/metrics payload.
type metricsView struct {
	// Replica is the -name identity; the gateway's load tracker adopts
	// it as the replica's display name.
	Replica   string  `json:"replica,omitempty"`
	UptimeSec float64 `json:"uptime_sec"`
	Jobs      struct {
		Queued    int `json:"queued"`
		Running   int `json:"running"`
		Done      int `json:"done"`
		Failed    int `json:"failed"`
		Cancelled int `json:"cancelled"`
		// Interrupted counts journaled jobs a previous server process
		// left mid-run (resurrected at startup).
		Interrupted int `json:"interrupted"`
		Total       int `json:"total"`
	} `json:"jobs"`
	// Admission is the -max-queue cap's live state — the headroom
	// signal fdagate's least-loaded router polls.
	Admission struct {
		InFlight int64 `json:"in_flight"`
		MaxQueue int64 `json:"max_queue"`
		Draining bool  `json:"draining"`
	} `json:"admission"`
	// BytesSimulated totals the communication accounting of every job
	// finished since the server started (training results and sweep
	// records).
	BytesSimulated int64 `json:"bytes_simulated"`
	// StoreRuns counts the cached run manifests in the registry;
	// StoreSnapshots the trajectory-prefix snapshots beside them.
	StoreRuns      int `json:"store_runs"`
	StoreSnapshots int `json:"store_snapshots"`
	// SnapshotHits/StepsSaved total the warm-start reuse across every
	// sweep job: cells restored from a prefix snapshot and the training
	// steps those restores skipped.
	SnapshotHits int64 `json:"snapshot_hits"`
	StepsSaved   int64 `json:"steps_saved"`
	// Telemetry is the process-wide metrics registry snapshot — session
	// step/sync timings, fabric byte counters, runstore latencies, HTTP
	// and job histograms with p50/p95/p99 — the JSON twin of GET /metrics.
	Telemetry obs.Snap `json:"telemetry"`
	// Runtime carries a fixed set of runtime/metrics samples (goroutines,
	// heap, GC cycles, mutex wait).
	Runtime map[string]float64 `json:"runtime"`
}

// handleMetrics implements GET /v1/metrics: job counts by status,
// simulated communication volume, uptime, and the registry snapshot.
// Queued counts jobs admitted whose execute goroutine has not started
// yet — under the in-process executor that window is one goroutine
// handoff wide, so the count is usually zero but no longer hardwired.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var m metricsView
	m.UptimeSec = time.Since(s.started).Seconds()
	s.mu.Lock()
	for _, j := range s.byID {
		v := j.view()
		switch v.Status {
		case statusRunning:
			if j.startedNs.Load() == 0 {
				m.Jobs.Queued++
			} else {
				m.Jobs.Running++
			}
		case statusDone:
			m.Jobs.Done++
		case statusFailed:
			m.Jobs.Failed++
		case statusCancelled:
			m.Jobs.Cancelled++
		case statusInterrupted:
			m.Jobs.Interrupted++
		}
		m.Jobs.Total++
		m.SnapshotHits += v.SnapshotHits
		m.StepsSaved += v.StepsSaved
	}
	s.mu.Unlock()
	m.Replica = s.name
	m.Admission.InFlight = s.active.Load()
	m.Admission.MaxQueue = int64(s.maxQueue)
	m.Admission.Draining = s.draining.Load()
	s.sampleAdmissionGauges()
	m.BytesSimulated = s.bytesSimulated.Load()
	m.StoreRuns = s.store.Count()
	m.StoreSnapshots = s.store.SnapshotCount()
	m.Telemetry = obs.Default.Snapshot()
	m.Runtime = obs.RuntimeSample()
	writeJSON(w, http.StatusOK, m)
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name     string `json:"name"`
		Artifact string `json:"artifact"`
	}
	var out []entry
	for _, r := range experiments.Runners() {
		out = append(out, entry{r.Name, r.Artifact})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStore(w http.ResponseWriter, r *http.Request) {
	ms, err := s.store.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ms == nil {
		ms = []runstore.Manifest{}
	}
	writeJSON(w, http.StatusOK, ms)
}

func (s *server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.byID[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

// submitRequest is the POST /v1/runs body. Like trainRequest, the spec
// fields and canonical key live in cluster.SweepSpec so fdagate's
// affinity routing and this server's dedupe cannot drift apart.
type submitRequest struct {
	cluster.SweepSpec
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	req.ApplyDefaults()
	if _, ok := experiments.Lookup(req.Experiment); !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown experiment %q (have %s)", req.Experiment, strings.Join(experiments.Names(), ", ")))
		return
	}
	scale, err := experiments.ParseScale(req.Scale)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	key := req.Key()
	j, ctx, existing, err := s.createJob(key, func(j *job) {
		j.Kind = "sweep"
		j.Experiment = req.Experiment
		j.Scale = req.Scale
		j.Seed = req.Seed
		j.stats = &experiments.SweepStats{}
	})
	if err != nil {
		s.writeUnavailable(w, err)
		return
	}
	if existing {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.wg.Add(1)
	go s.executeSweep(j, scale, ctx)
	writeJSON(w, http.StatusAccepted, j.view())
}

// errAtCapacity/errDraining are returned by createJob when a new job is
// refused — by the -max-queue admission cap, or because the replica is
// draining; the handlers translate either into a structured 503 with
// Retry-After (writeUnavailable).
var (
	errAtCapacity = errors.New("server at capacity")
	errDraining   = errors.New("server draining")
)

// retryAfterSec derives the Retry-After hint from measured state
// instead of a hard-coded second: the median job run time spread across
// the cap's slots approximates how long until one frees (cap jobs
// complete at roughly cap/p50 per second), scaled by how deep the
// in-flight window currently is relative to the cap. Clamped to
// [1, 30]; 1 before any job has completed (no measurement yet).
func (s *server) retryAfterSec() int {
	if s.maxQueue <= 0 {
		return 1
	}
	p50 := jobRunTrain.Quantile(0.5)
	if v := jobRunSweep.Quantile(0.5); v > p50 {
		p50 = v
	}
	capf := float64(s.maxQueue)
	sec := math.Ceil(p50 / capf * float64(s.active.Load()) / capf)
	if sec < 1 {
		return 1
	}
	if sec > 30 {
		return 30
	}
	return int(sec)
}

// writeUnavailable emits the 503 for a refused submission: a structured
// JSON body naming the reason, plus a Retry-After hint derived from
// measured job durations so well-behaved clients (and fdaload, which
// counts rejections as shed load rather than errors) back off
// proportionally instead of hammering.
func (s *server) writeUnavailable(w http.ResponseWriter, cause error) {
	retry := s.retryAfterSec()
	msg := fmt.Sprintf("server at capacity: %d jobs in flight (max %d); retry later", s.active.Load(), s.maxQueue)
	if errors.Is(cause, errDraining) {
		msg = "server draining: not accepting new jobs"
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":           msg,
		"in_flight":       s.active.Load(),
		"max_queue":       s.maxQueue,
		"draining":        s.draining.Load(),
		"retry_after_sec": retry,
	})
}

// handleDrain implements POST /v1/drain (stop admitting, keep serving
// reads and in-flight jobs) and DELETE /v1/drain (re-admit). Draining
// is how an operator or orchestrator takes a replica out of a fdagate
// rotation without killing in-flight work: the gateway's poller sees
// admission.draining and routes new submissions elsewhere.
func (s *server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(r.Method == http.MethodPost)
	writeJSON(w, http.StatusOK, map[string]any{
		"draining":  s.draining.Load(),
		"in_flight": s.active.Load(),
	})
}

// createJob registers a new job under key — wired to a fresh child
// context of baseCtx before it becomes visible to other handlers, so a
// concurrent DELETE always finds a live cancel function — or returns
// the existing job when a live (running/done) one already owns the key.
// Failed and cancelled jobs give way to a retry, which re-executes only
// the work the registry (or a session checkpoint) lacks. With -max-queue
// set, a submission that would push the in-flight job count past the
// cap returns errAtCapacity instead of admitting unboundedly; dedupe
// hits are never refused — they create no work.
func (s *server) createJob(key string, init func(*job)) (*job, context.Context, bool, error) {
	s.mu.Lock()
	if j, ok := s.byKey[key]; ok {
		st := j.view().Status
		if st != statusFailed && st != statusCancelled && st != statusInterrupted {
			s.mu.Unlock()
			return j, nil, true, nil
		}
	}
	if s.draining.Load() {
		s.mu.Unlock()
		jobsRejected.Inc()
		return nil, nil, false, errDraining
	}
	if s.maxQueue > 0 && s.active.Load() >= int64(s.maxQueue) {
		s.mu.Unlock()
		jobsRejected.Inc()
		return nil, nil, false, errAtCapacity
	}
	s.nextID++
	j := &job{
		ID:         fmt.Sprintf("r%d", s.nextID),
		key:        key,
		out:        &lockedBuffer{},
		done:       make(chan struct{}),
		events:     newBroker(),
		status:     statusRunning,
		admittedNs: int64(time.Since(s.started)),
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j.cancel = cancel
	init(j)
	s.byID[j.ID] = j
	s.byKey[key] = j
	s.order = append(s.order, j.ID)
	s.active.Add(1)
	view := j.view()
	s.mu.Unlock()
	// Journal disk I/O happens outside s.mu so a slow disk cannot stall
	// every status poll behind a submission.
	s.journal.record(view, key)
	return j, ctx, false, nil
}

// executeSweep runs a figure sweep under ctx; the store-aware scheduler
// inside the runner serves every already-cached cell from disk, and
// cancellation (DELETE or shutdown) stops it between cells, so the
// persisted cells fund the next submission of the same spec.
func (s *server) executeSweep(j *job, scale experiments.Scale, ctx context.Context) {
	s.markStarted(j)
	defer s.wg.Done()
	defer j.events.close()
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			s.setStatus(j, statusFailed, fmt.Sprintf("panic: %v", r), nil)
		}
	}()
	res, err := experiments.Run(j.Experiment, experiments.Options{
		Scale: scale,
		Seed:  j.Seed,
		Out:   j.out,
		Jobs:  s.jobs,
		Store: s.store,
		Stats: j.stats,
		Warm:  s.warm,
		Ctx:   ctx,
		Events: func(ce experiments.CellEvent) {
			j.events.publish("cell", map[string]any{
				"index":  ce.Index,
				"total":  ce.Total,
				"cached": ce.Cached,
				"model":  ce.Spec.Model,
				"k":      ce.Spec.K,
				"theta":  ce.Spec.Theta,
			})
		},
	})
	switch {
	case err == nil:
		s.setStatus(j, statusDone, "", res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.setStatus(j, statusCancelled, err.Error(), nil)
	default:
		s.setStatus(j, statusFailed, err.Error(), nil)
	}
}

func (s *server) job(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[r.PathValue("id")]
	return j, ok
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleCancel implements DELETE /v1/runs/{id}: the job's context is
// cancelled, the handler waits for the run goroutine to wind down
// (sweeps stop between cells, training sessions between steps — saving
// a resume checkpoint), and the final view (status "cancelled") is
// returned. Cancelling a finished job is a no-op conflict.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	if st := j.view().Status; st != statusRunning {
		writeError(w, http.StatusConflict, "run already "+st)
		return
	}
	j.cancel()
	select {
	case <-j.done:
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "cancellation requested; run still draining")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleEvents implements GET /v1/runs/{id}/events as Server-Sent
// Events: an initial "status" event, then the job's live progress
// ("cell" for sweep cells; "step", "sync", "eval" for training
// sessions), a terminal "done"/"status" event, and EOF. Events are a
// live feed, not a replay log: progress emitted before the subscription
// is summarized by the initial status snapshot, and a slow consumer may
// have intermediate events dropped rather than stall the run.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	// Subscribe before the snapshot so no event between the two is lost.
	ch, unsub := j.events.subscribe()
	defer unsub()
	writeSSE(w, "status", j.view())
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case msg, ok := <-ch:
			if !ok {
				// Broker closed: the run finished. Emit the terminal view.
				writeSSE(w, "status", j.view())
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", msg.event, msg.data)
			fl.Flush()
		}
	}
}

func (s *server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	j.mu.Lock()
	status, result := j.status, j.result
	j.mu.Unlock()
	switch status {
	case statusRunning:
		writeError(w, http.StatusConflict, "run still executing; poll /v1/runs/"+j.ID)
	case statusFailed, statusCancelled, statusInterrupted:
		writeError(w, http.StatusConflict, "run "+status+"; see /v1/runs/"+j.ID)
	default:
		writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "records": result})
	}
}

func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r)
	if !ok {
		writeError(w, http.StatusNotFound, "no such run")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, j.out.String())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeSSE emits one Server-Sent Event with a JSON payload.
func writeSSE(w http.ResponseWriter, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		data = []byte(fmt.Sprintf("%q", err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

// lockedBuffer lets status endpoints read a job's rendered output while
// the runner is still writing it.
type lockedBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// broker fans a job's progress events out to SSE subscribers. Publishing
// never blocks the run: a subscriber whose buffer is full misses that
// event (SSE consumers resynchronize from status snapshots).
type broker struct {
	mu     sync.Mutex
	subs   map[chan sseMsg]struct{}
	closed bool
}

type sseMsg struct {
	event string
	data  string
}

func newBroker() *broker {
	return &broker{subs: map[chan sseMsg]struct{}{}}
}

// publish marshals v once and offers it to every subscriber. With no
// subscribers it returns before encoding anything, so an unwatched
// training run pays one mutex round-trip per event, not a JSON encode.
func (b *broker) publish(event string, v any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	msg := sseMsg{event: event, data: string(data)}
	for ch := range b.subs {
		select {
		case ch <- msg:
		default: // slow subscriber: drop rather than stall the run
		}
	}
}

// subscribe registers a consumer; the returned channel closes when the
// job finishes. unsub is idempotent and safe after close.
func (b *broker) subscribe() (<-chan sseMsg, func()) {
	ch := make(chan sseMsg, 256)
	b.mu.Lock()
	if b.closed {
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
		}
		b.mu.Unlock()
	}
}

// close ends the stream for every subscriber.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		close(ch)
	}
	b.subs = map[chan sseMsg]struct{}{}
}

// journal appends job status transitions to <store>/jobs.jsonl so an
// operator (or the server itself after a restart) can see which runs
// were interrupted — the discovery half of checkpoint-backed resume.
// Journal writes are advisory: a failure disables the journal but never
// a run.
type journal struct {
	mu   sync.Mutex
	path string
	bad  bool
}

type journalEntry struct {
	Time time.Time `json:"time"`
	// Key is the job's dedupe key, journaled so a restarted server can
	// re-register resurrected jobs under it (entries from before the key
	// was journaled resurrect without one and simply never dedupe).
	Key string `json:"key,omitempty"`
	jobView
}

func openJournal(dir string) *journal {
	return &journal{path: dir + "/jobs.jsonl"}
}

func (jn *journal) record(v jobView, key string) {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.bad {
		return
	}
	line, err := json.Marshal(journalEntry{Time: time.Now().UTC(), Key: key, jobView: v})
	if err != nil {
		return
	}
	if err := appendLine(jn.path, line); err != nil {
		jn.bad = true
	}
}

func (jn *journal) close() {}

// read parses the journal into one entry per job — the last journaled
// transition wins, in first-seen job order. Unparseable lines (a torn
// tail from a crash mid-append) are skipped, not fatal.
func (jn *journal) read() ([]journalEntry, error) {
	b, err := os.ReadFile(jn.path)
	if err != nil {
		return nil, err
	}
	var entries []journalEntry
	index := map[string]int{}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.ID == "" {
			continue
		}
		if i, ok := index[e.ID]; ok {
			entries[i] = e
		} else {
			index[e.ID] = len(entries)
			entries = append(entries, e)
		}
	}
	return entries, nil
}

// compact atomically rewrites the journal to one line per job.
func (jn *journal) compact(entries []journalEntry) {
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.bad {
		return
	}
	var b strings.Builder
	for _, e := range entries {
		line, err := json.Marshal(e)
		if err != nil {
			return
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	tmp := jn.path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		jn.bad = true
		return
	}
	if err := os.Rename(tmp, jn.path); err != nil {
		jn.bad = true
	}
}

// recoverJournal replays the job journal left by previous server
// processes: jobs journaled mid-run resurface in /v1/runs as
// "interrupted" (their keys give way to resubmissions, which resume
// from the registry or session checkpoint), the ID counter continues
// past every journaled ID, and the journal file is compacted to its
// last entry per job. Called once, before the listener starts.
func (s *server) recoverJournal() {
	entries, err := s.journal.read()
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "fdaserve: reading job journal: %v\n", err)
		}
		return
	}
	s.mu.Lock()
	for i, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.ID, "r%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		if e.Status != statusRunning && e.Status != statusInterrupted {
			continue // terminal in a past life; history only
		}
		e.Status = statusInterrupted
		if e.Error == "" {
			e.Error = "server exited mid-run; resubmit to resume"
		}
		entries[i] = e
		j := resurrectJob(e)
		s.byID[j.ID] = j
		if j.key != "" {
			s.byKey[j.key] = j
		}
		s.order = append(s.order, j.ID)
	}
	s.mu.Unlock()
	s.journal.compact(entries)
}

// resurrectJob rebuilds a terminal job shell from its journal entry:
// live machinery (done channel, event broker, cancel) is present but
// already finished, so every handler treats it like any other
// terminal job.
func resurrectJob(e journalEntry) *job {
	j := &job{
		ID: e.ID, Kind: e.Kind, Experiment: e.Experiment, Scale: e.Scale, Seed: e.Seed,
		key:    e.Key,
		out:    &lockedBuffer{},
		done:   make(chan struct{}),
		cancel: func() {},
		events: newBroker(),
		status: e.Status,
		errMsg: e.Error,
	}
	close(j.done)
	j.events.close()
	if e.Cells > 0 || e.Cached > 0 || e.Executed > 0 || e.SnapshotHits > 0 {
		j.stats = &experiments.SweepStats{}
		j.stats.Cells.Store(e.Cells)
		j.stats.Cached.Store(e.Cached)
		j.stats.Executed.Store(e.Executed)
		j.stats.SnapshotHits.Store(e.SnapshotHits)
		j.stats.StepsSaved.Store(e.StepsSaved)
	}
	j.steps.Store(e.Steps)
	j.syncs.Store(e.Syncs)
	j.resumed.Store(e.Resumed)
	return j
}
