package main

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// TestHealthzAndMetrics covers the liveness and metrics endpoints:
// healthz responds before any job exists, and metrics reflects job
// lifecycle counts, uptime and the simulated-bytes aggregate after a
// run completes.
func TestHealthzAndMetrics(t *testing.T) {
	ts := testServer(t, t.TempDir())

	var hz map[string]string
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &hz)
	if hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}
	if hz["version"] == "" {
		t.Fatal("healthz carries no version")
	}

	var m metricsView
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if m.Jobs.Total != 0 || m.BytesSimulated != 0 {
		t.Fatalf("fresh server metrics: %+v", m)
	}
	if m.UptimeSec < 0 {
		t.Fatalf("negative uptime %v", m.UptimeSec)
	}

	// Run one tiny sweep to completion, then the counters must move.
	var v jobView
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":1}`, http.StatusAccepted, &v)
	waitStatus(t, ts, v.ID, statusDone)

	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if m.Jobs.Done != 1 || m.Jobs.Total != 1 || m.Jobs.Running != 0 {
		t.Fatalf("post-run job counts: %+v", m.Jobs)
	}
	if m.BytesSimulated <= 0 {
		t.Fatalf("completed sweep contributed %d simulated bytes", m.BytesSimulated)
	}
	if m.StoreRuns <= 0 {
		t.Fatalf("completed sweep left %d cached runs", m.StoreRuns)
	}
}

// TestPromMetricsEndpoint covers GET /metrics: after HTTP traffic and a
// completed train job, the exposition parses as Prometheus text and
// carries the per-route HTTP latency histogram, the job run-time and
// queue-wait histograms, the session counters and the runtime samples.
func TestPromMetricsEndpoint(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	ts := testServer(t, t.TempDir())

	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, nil)
	var v jobView
	postJSON(t, ts.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"LinearFDA","k":2,"batch":8,"steps":8,"eval_every":4,"seed":5}`,
		http.StatusAccepted, &v)
	waitStatus(t, ts, v.ID, statusDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("exposition content type %q", ct)
	}
	body := readAll(t, resp)
	if err := obs.ValidatePrometheusText(body); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	for _, want := range []string{
		"fdaserve_http_request_seconds_bucket",
		`route="GET /v1/healthz"`,
		"fdaserve_http_requests_total",
		"fdaserve_job_run_seconds_count",
		`kind="train"`,
		"fdaserve_job_queue_wait_seconds_count",
		"fda_steps_total",
		"go_sched_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}

	// The JSON twin carries the registry snapshot and runtime samples.
	var m metricsView
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if len(m.Telemetry.Counters) == 0 || len(m.Telemetry.Histograms) == 0 {
		t.Fatalf("telemetry snapshot empty: %+v", m.Telemetry)
	}
	if m.Telemetry.CounterSum("fda_steps_total") <= 0 {
		t.Fatal("fda_steps_total missing from the /v1/metrics snapshot")
	}
	if _, ok := m.Runtime["go_sched_goroutines"]; !ok {
		t.Fatalf("runtime samples missing goroutine count: %+v", m.Runtime)
	}
}

// TestAccessLog pins the structured access log: one line per request
// with method, path, route pattern, status, duration and the job id.
func TestAccessLog(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st, 2, context.Background())
	var buf bytes.Buffer
	srv.accessLog = slog.New(slog.NewTextHandler(&buf, nil))
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	getJSON(t, ts.URL+"/v1/runs/r404", http.StatusNotFound, nil)
	line := buf.String()
	for _, want := range []string{
		"msg=access", "method=GET", "path=/v1/runs/r404",
		`route="GET /v1/runs/{id}"`, "status=404", "dur=", "job=r404",
	} {
		if !strings.Contains(line, want) {
			t.Fatalf("access log missing %q: %q", want, line)
		}
	}
}

// waitStatus polls a job until it reaches the wanted terminal status.
func waitStatus(t *testing.T, ts *httptest.Server, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var v jobView
		getJSON(t, ts.URL+"/v1/runs/"+id, http.StatusOK, &v)
		if v.Status == want {
			return v
		}
		if v.Status != statusRunning {
			t.Fatalf("job %s reached %q (err %q), want %q", id, v.Status, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, v.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTrainDistributedEndToEnd drives a distributed train job through
// the HTTP API: the server coordinates on its fabric address, two
// worker "processes" (dist.RunWorker in goroutines — the same code
// fdarun -worker runs) join, and the job lands done with the verified
// cluster result counted into the metrics.
func TestTrainDistributedEndToEnd(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st, 2, context.Background())
	srv.fabricAddr = "127.0.0.1:0"
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	// Distributed without -fabric is a client error.
	noFabric := testServer(t, t.TempDir())
	postJSON(t, noFabric.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"LinearFDA","distributed":true}`, http.StatusBadRequest, nil)

	var v jobView
	postJSON(t, ts.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"LinearFDA","k":2,"batch":16,"steps":16,"eval_every":8,"seed":7,"distributed":true}`,
		http.StatusAccepted, &v)

	// The coordinator listens on an ephemeral port; the job view
	// announces it once the listener is bound.
	addr := waitFabricAddr(t, ts, v.ID)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, _, errs[w] = dist.RunWorker(context.Background(), addr, 1)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	final := waitStatus(t, ts, v.ID, statusDone)
	if final.Steps != 16 {
		t.Fatalf("distributed job ran %d steps, want 16", final.Steps)
	}

	var m metricsView
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if m.BytesSimulated <= 0 {
		t.Fatalf("distributed run contributed %d simulated bytes", m.BytesSimulated)
	}
}

// waitFabricAddr polls the job view until the coordinator address is
// published.
func waitFabricAddr(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var v jobView
		getJSON(t, ts.URL+"/v1/runs/"+id, http.StatusOK, &v)
		if v.FabricAddr != "" {
			return v.FabricAddr
		}
		if v.Status != statusRunning {
			t.Fatalf("job %s reached %q before binding its fabric listener", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("coordinator address never published")
	return ""
}
