package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
)

// This file implements single-run training sessions as first-class
// server jobs: POST /v1/train starts a core.Session, its typed events
// stream over the job's SSE endpoint, DELETE cancels it between steps
// and writes a full-state checkpoint into the store directory, and
// resubmitting the same spec restores that checkpoint and continues
// bit-identically to a run that was never interrupted (the session
// resume contract, pinned by TestTrainCancelResumeExact).

// trainRequest is the POST /v1/train body. The spec fields, their
// defaults and the canonical dedupe key all live in cluster.TrainSpec,
// so the fdagate affinity router and this server's dedupe compute the
// same key from one definition — a divergence would break cache-hit
// routing, and sharing the type makes it a compile error instead.
type trainRequest struct {
	cluster.TrainSpec
}

func (t *trainRequest) withDefaults() { t.ApplyDefaults() }

// canonicalKey identifies the training spec for dedupe and for the
// resume checkpoint's content address.
func (t trainRequest) canonicalKey() string { return t.Key() }

// jobSpec converts the request into the distributed job payload.
func (t trainRequest) jobSpec() dist.JobSpec {
	return dist.JobSpec{
		Model: t.Model, Strategy: t.Strategy, Theta: t.Theta, Tau: t.Tau,
		K: t.K, Batch: t.Batch, Steps: t.Steps, EvalEvery: t.EvalEvery,
		Target: t.Target, Het: t.Het, Seed: t.Seed,
	}
}

// trainStrategyFor builds the requested strategy through the shared
// name index; FedOpt variants bind their round length to cfg exactly as
// fdarun does.
func trainStrategyFor(req trainRequest, cfg core.Config) (core.Strategy, error) {
	return dist.StrategyFor(req.Strategy, req.Theta, req.Tau, cfg)
}

// trainHet parses the heterogeneity selector through the shared grammar
// (iid, label<Y>, pct<X>, dir<alpha>).
func trainHet(s string) (data.Heterogeneity, error) {
	return data.ParseHeterogeneity(s)
}

// checkpointPath addresses the resume checkpoint of a train spec inside
// the store directory.
func (s *server) checkpointPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.store.Dir(), "sessions", hex.EncodeToString(sum[:8])+".ckpt")
}

func (s *server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req trainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if req.Model == "" || req.Strategy == "" {
		writeError(w, http.StatusBadRequest, "model and strategy are required")
		return
	}
	spec, err := models.ByName(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	req.withDefaults()
	het, err := trainHet(req.Het)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// The datasets are NOT synthesized here. Generating and normalizing
	// a spec's workload costs hundreds of milliseconds — paying it on
	// the admission path made POST /v1/train latency scale with dataset
	// size instead of queue depth (and for distributed jobs the result
	// was discarded entirely: the workers synthesize their own shards).
	// Admission validates everything it can without the data and defers
	// materialization to the job goroutine; core.NewSession re-validates
	// the completed config before any training step runs.
	cfg := core.Config{
		K: req.K, BatchSize: req.Batch, Seed: req.Seed,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Het:            het,
		MaxSteps:       req.Steps,
		EvalEvery:      req.EvalEvery,
		TargetAccuracy: req.Target,
		Parallelism:    s.jobs,
	}
	// Reject bad configs at the door with the structured field errors,
	// instead of surfacing them later as a failed job.
	if err := validateAdmission(cfg); err != nil {
		var cerr *core.ConfigError
		if errors.As(err, &cerr) {
			fields := make([]map[string]string, 0, len(cerr.Fields))
			for _, f := range cerr.Fields {
				fields = append(fields, map[string]string{"field": f.Field, "msg": f.Msg})
			}
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error(), "fields": fields})
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Vet the strategy name now (unknown strategies stay a 400, not a
	// failed job). The probe uses an empty placeholder dataset; the real
	// strategy is rebuilt in the goroutine because the FedOpt variants
	// derive their round length from Train.Len().
	probe := cfg
	probe.Train = &data.Dataset{}
	if _, err := trainStrategyFor(req, probe); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Distributed && s.fabricAddr == "" {
		writeError(w, http.StatusBadRequest, "distributed training requires the server to be started with -fabric")
		return
	}

	j, ctx, existing, err := s.createJob(req.canonicalKey(), func(j *job) {
		j.Kind = "train"
		j.Experiment = req.Model + "/" + req.Strategy
		j.Seed = req.Seed
	})
	if err != nil {
		s.writeUnavailable(w, err)
		return
	}
	if existing {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.wg.Add(1)
	if req.Distributed {
		go s.executeTrainDistributed(j, req, ctx)
	} else {
		go s.executeTrain(j, spec, req, cfg, ctx)
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// validateAdmission runs cfg.Validate but tolerates the Train/Test
// emptiness errors: handleTrain admits before materializing the
// datasets (see the comment there), and DatasetFor never yields an
// empty set for a zoo spec, so those two fields cannot actually be
// invalid. Every other field error is still rejected at the door.
func validateAdmission(cfg core.Config) error {
	err := cfg.Validate()
	if err == nil {
		return nil
	}
	var cerr *core.ConfigError
	if !errors.As(err, &cerr) {
		return err
	}
	fields := cerr.Fields[:0:0]
	for _, f := range cerr.Fields {
		if f.Field == "Train" || f.Field == "Test" {
			continue
		}
		fields = append(fields, f)
	}
	if len(fields) == 0 {
		return nil
	}
	return &core.ConfigError{Fields: fields}
}

// executeTrainDistributed coordinates one multi-process training run:
// the job listens on the server's fabric address, waits for the K
// worker processes, relays their collectives and records the verified
// cluster Result. Cancellation (DELETE or shutdown) closes the
// coordinator, which unblocks the workers with transport errors.
func (s *server) executeTrainDistributed(j *job, req trainRequest, ctx context.Context) {
	s.markStarted(j)
	defer s.wg.Done()
	defer j.events.close()
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			s.setStatus(j, statusFailed, fmt.Sprintf("panic: %v", r), nil)
		}
	}()

	coord, err := comm.ListenCoordinator(s.fabricAddr, req.K)
	if err != nil {
		s.setStatus(j, statusFailed, err.Error(), nil)
		return
	}
	defer coord.Close()
	j.mu.Lock()
	j.fabricAddr = coord.Addr()
	j.mu.Unlock()
	j.events.publish("fabric", map[string]any{"addr": coord.Addr(), "workers": req.K})

	res, err := dist.Coordinate(ctx, coord, req.jobSpec())
	switch {
	case err == nil:
		j.steps.Store(int64(res.Steps))
		j.syncs.Store(int64(res.SyncCount))
		s.setStatus(j, statusDone, "", res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.setStatus(j, statusCancelled, err.Error(), nil)
	default:
		s.setStatus(j, statusFailed, err.Error(), nil)
	}
}

// executeTrain drives one core.Session under the job's context,
// restoring a prior interrupted submission's checkpoint when one exists
// and writing one when this run is cancelled. Dataset synthesis and the
// final strategy construction happen here, off the admission path — the
// handler already vetted everything that can 400.
func (s *server) executeTrain(j *job, spec models.Spec, req trainRequest, cfg core.Config, ctx context.Context) {
	s.markStarted(j)
	ckpt := s.checkpointPath(j.key)
	defer s.wg.Done()
	defer j.events.close()
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			os.Remove(ckpt)
			s.setStatus(j, statusFailed, fmt.Sprintf("panic: %v", r), nil)
		}
	}()

	cfg.Train, cfg.Test = models.DatasetFor(spec, req.Seed)
	strat, err := trainStrategyFor(req, cfg)
	if err != nil {
		s.setStatus(j, statusFailed, err.Error(), nil)
		return
	}
	sess, err := core.NewSession(ctx, cfg, strat)
	if err != nil {
		os.Remove(ckpt)
		s.setStatus(j, statusFailed, err.Error(), nil)
		return
	}
	if snap, err := checkpoint.Load(ckpt); err == nil {
		if err := sess.Restore(snap); err != nil {
			// A stale or mismatched checkpoint must not poison the run:
			// drop it and train from scratch.
			fmt.Fprintf(os.Stderr, "fdaserve: dropping bad checkpoint %s: %v\n", ckpt, err)
			os.Remove(ckpt)
		} else {
			j.resumed.Store(true)
			j.steps.Store(int64(sess.StepCount()))
		}
	}

	sess.Subscribe(func(e core.Event) {
		switch ev := e.(type) {
		case core.StepEvent:
			j.steps.Store(int64(ev.Step))
			j.events.publish("step", ev)
		case core.SyncEvent:
			j.syncs.Store(int64(ev.SyncCount))
			j.events.publish("sync", ev)
		case core.EvalEvent:
			j.events.publish("eval", ev)
		case core.DoneEvent:
			j.events.publish("done", ev)
		}
	})

	res, err := sess.Run()
	switch {
	case err == nil:
		os.Remove(ckpt) // the run is complete; nothing left to resume
		s.setStatus(j, statusDone, "", res)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if snap, serr := sess.Snapshot(); serr == nil {
			if werr := saveCheckpoint(ckpt, snap); werr != nil {
				fmt.Fprintf(os.Stderr, "fdaserve: saving resume checkpoint: %v\n", werr)
			}
		} else {
			fmt.Fprintf(os.Stderr, "fdaserve: snapshotting cancelled session: %v\n", serr)
		}
		s.setStatus(j, statusCancelled, err.Error(), nil)
	default:
		// A failed run leaves nothing to resume (re-running the same
		// deterministic spec re-fails), so its checkpoint — left by an
		// earlier cancellation of this spec — would be an orphan. Drop it:
		// the sessions directory only ever holds resumable state.
		os.Remove(ckpt)
		s.setStatus(j, statusFailed, err.Error(), nil)
	}
}

// sweepSessionCheckpoints removes session resume checkpoints older than
// ttl from <store>/sessions. A checkpoint is only useful to a
// resubmission of the same spec; one that has sat unclaimed past the
// TTL is an orphan — its job was abandoned, or a crash skipped the
// cleanup paths. Returns how many files were removed.
func sweepSessionCheckpoints(storeDir string, ttl time.Duration) int {
	dir := filepath.Join(storeDir, "sessions")
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-ttl)
	n := 0
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".ckpt") {
			continue
		}
		info, err := de.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if os.Remove(filepath.Join(dir, de.Name())) == nil {
			n++
		}
	}
	return n
}

// saveCheckpoint writes snap to path, creating the sessions directory on
// first use.
func saveCheckpoint(path string, snap *checkpoint.Snapshot) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return checkpoint.Save(path, snap)
}

// appendLine appends one line to path (creating it as needed).
func appendLine(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
