// Command fdaserve exposes the experiment suite as an HTTP service
// backed by the content-addressed run registry: submit a figure sweep
// or a single training session, watch its progress live over SSE,
// cancel it, fetch its records, and browse the cached-run catalog.
// Every grid cell persists in the registry and every cancelled training
// session checkpoints its full state, so repeated or interrupted
// submissions cost only the work the store does not yet hold
// (DESIGN.md §6, §8).
//
//	fdaserve -store runs.d -addr :8080
//
// With -fabric, the server also coordinates genuinely multi-process
// training: POST /v1/train with "distributed": true listens for K
// `fdarun -worker -connect` processes on the fabric address (published
// in the job view as fabric_addr), relays their collectives and stores
// the verified cluster result.
//
//	fdaserve -store runs.d -addr :8080 -fabric :9000
//
//	curl -s localhost:8080/v1/healthz                 # JSON liveness
//	curl -s localhost:8080/metrics                    # Prometheus text exposition
//	curl -s localhost:8080/v1/metrics                 # jobs, simulated bytes, telemetry snapshot
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/runs -d '{"experiment":"fig3","scale":"tiny","seed":1}'
//	curl -s -X POST localhost:8080/v1/train -d '{"model":"lenet5s","strategy":"LinearFDA","steps":400}'
//	curl -s localhost:8080/v1/runs/r1
//	curl -N  localhost:8080/v1/runs/r1/events     # live progress (SSE)
//	curl -s -X DELETE localhost:8080/v1/runs/r1   # cancel (resumable)
//	curl -s localhost:8080/v1/runs/r1/records
//	curl -s localhost:8080/v1/runs/r1/output
//	curl -s localhost:8080/v1/store
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight run
// contexts are cancelled (training sessions write resume checkpoints,
// sweeps keep their persisted cells), the listener drains, and the job
// journal is flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "fdaserve-store", "run-registry directory backing the service")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep cells per run (results are identical at any setting)")
		fabric   = flag.String("fabric", "", "TCP-fabric listen address for distributed train jobs (e.g. :9000); empty disables them")
		warm     = flag.Bool("warmstart", true, "reuse trajectory-prefix snapshots across sweep cells sharing a trajectory (records stay bit-identical; wall clock drops)")
		ttl      = flag.Duration("session-ttl", 7*24*time.Hour, "expire orphaned session checkpoints and prefix snapshots older than this at startup (0 disables the sweep)")
		pprofOn  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		name     = flag.String("name", "", "replica identity reported on /v1/metrics and /v1/healthz (for fdagate clusters; default: the listen address)")
		maxQueue = flag.Int("max-queue", 0, "admission cap on in-flight jobs; beyond it new submissions get 503 + Retry-After (0 = unbounded)")
		record   = flag.String("record", "", "journal every workload-relevant API request to this tracev1 file, replayable with fdaload -replay")
		version  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdaserve"))
		return
	}

	// The server always runs with telemetry on: training results are
	// bit-identical either way (the parity tests pin this), and the
	// /metrics exposition is only useful when the registry is live.
	obs.Enable()

	st, err := runstore.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdaserve: opening store: %v\n", err)
		os.Exit(1)
	}

	// baseCtx parents every job; the signal handler cancels it so every
	// in-flight run winds down (and checkpoints) before the process exits.
	baseCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Startup hygiene: drop expired session checkpoints and prefix
	// snapshots, then resurface journaled mid-run jobs as "interrupted".
	if *ttl > 0 {
		if n := sweepSessionCheckpoints(st.Dir(), *ttl); n > 0 {
			fmt.Printf("fdaserve: expired %d orphaned session checkpoint(s)\n", n)
		}
		if n := st.SweepSnapshots(*ttl); n > 0 {
			fmt.Printf("fdaserve: expired %d stale prefix snapshot(s)\n", n)
		}
	}
	s := newServer(st, *jobs, baseCtx)
	s.fabricAddr = *fabric
	s.warm = *warm
	s.accessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	s.pprof = *pprofOn
	s.name = *name
	if s.name == "" {
		s.name = *addr
	}
	s.maxQueue = *maxQueue
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdaserve: opening trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		// Offsets are relative to recording start, so a trace replays at
		// the original cadence regardless of when it was captured.
		epoch := time.Now()
		tw, err := workload.NewTraceWriter(f, "fdaserve", epoch.Unix(),
			func() int64 { return int64(time.Since(epoch)) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdaserve: starting trace: %v\n", err)
			os.Exit(1)
		}
		s.recorder = tw
		fmt.Printf("fdaserve: recording workload trace to %s\n", *record)
	}
	s.recoverJournal()
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.routes(),
		// Slow-client hardening: a connection that never finishes its
		// headers cannot pin a handler goroutine forever. No overall
		// write timeout — the SSE endpoint streams indefinitely.
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("fdaserve: listening on %s, store %s\n", *addr, *storeDir)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "fdaserve: %v\n", err)
		os.Exit(1)
	case <-baseCtx.Done():
	}

	fmt.Fprintln(os.Stderr, "fdaserve: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fdaserve: shutdown: %v\n", err)
	}
	// Job contexts are children of baseCtx, already cancelled; drain
	// waits for their goroutines to checkpoint and record final status.
	s.drain()
}
