// Command fdaserve exposes the experiment suite as an HTTP service
// backed by the content-addressed run registry: submit a run spec, poll
// its status, fetch its records, and browse the cached-run catalog.
// Because every grid cell persists in the registry, repeated or
// previously interrupted specs cost only the cells the store does not
// yet hold (DESIGN.md §6).
//
//	fdaserve -store runs.d -addr :8080
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -X POST localhost:8080/v1/runs -d '{"experiment":"fig3","scale":"tiny","seed":1}'
//	curl -s localhost:8080/v1/runs/r1
//	curl -s localhost:8080/v1/runs/r1/records
//	curl -s localhost:8080/v1/runs/r1/output
//	curl -s localhost:8080/v1/store
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"

	"repro/internal/buildinfo"
	"repro/internal/runstore"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "fdaserve-store", "run-registry directory backing the service")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep cells per run (results are identical at any setting)")
		version  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdaserve"))
		return
	}

	st, err := runstore.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdaserve: opening store: %v\n", err)
		os.Exit(1)
	}
	s := newServer(st, *jobs)
	fmt.Printf("fdaserve: listening on %s, store %s\n", *addr, *storeDir)
	if err := http.ListenAndServe(*addr, s.routes()); err != nil {
		fmt.Fprintf(os.Stderr, "fdaserve: %v\n", err)
		os.Exit(1)
	}
}
