package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runstore"
	"repro/internal/workload"
)

// This file is the server half of the load-generation story (DESIGN.md
// §13): the -max-queue admission cap, the -record trace journal under
// full handler concurrency, and the end-to-end thousand-job exercise
// driving the workload engine against a live server.

// loadServer boots a server with direct access to the *server value,
// so tests can wire the admission cap and trace recorder and read the
// in-flight counter.
func loadServer(t *testing.T, dir string) (*server, *httptest.Server) {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(st, 2, context.Background())
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestAdmissionCap(t *testing.T) {
	s, ts := loadServer(t, t.TempDir())
	s.maxQueue = 2

	// Two long-running training jobs fill the queue. Steps is far more
	// work than the test will wait for; the jobs are cancelled below.
	submit := func(seed int) jobView {
		var v jobView
		postJSON(t, ts.URL+"/v1/train",
			fmt.Sprintf(`{"model":"lenet5s","strategy":"LinearFDA","k":1,"batch":8,"steps":100000,"eval_every":50000,"seed":%d}`, seed),
			http.StatusAccepted, &v)
		return v
	}
	j1, j2 := submit(1), submit(2)

	// The third submission must be refused: 503, Retry-After, and a
	// structured body naming the cap.
	resp, err := http.Post(ts.URL+"/v1/train", "application/json",
		strings.NewReader(`{"model":"lenet5s","strategy":"LinearFDA","k":1,"batch":8,"steps":100000,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap submit = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	var body struct {
		Error    string `json:"error"`
		InFlight int64  `json:"in_flight"`
		MaxQueue int    `json:"max_queue"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding 503 body: %v", err)
	}
	if body.Error == "" || body.MaxQueue != 2 || body.InFlight < 2 {
		t.Fatalf("503 body %+v, want error text, max_queue=2, in_flight>=2", body)
	}

	// Sweeps share the same admission gate.
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":1}`,
		http.StatusServiceUnavailable, nil)

	// Reads are never capped: the server sheds new work, not visibility
	// into existing work.
	getJSON(t, ts.URL+"/v1/runs", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/store", http.StatusOK, nil)

	// Resubmitting a queued spec is a dedupe hit, not a new admission.
	var dup jobView
	postJSON(t, ts.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"LinearFDA","k":1,"batch":8,"steps":100000,"eval_every":50000,"seed":1}`,
		http.StatusOK, &dup)
	if dup.ID != j1.ID {
		t.Fatalf("dedupe under cap returned job %s, want %s", dup.ID, j1.ID)
	}

	// Cancelling drains the queue and admission reopens.
	for _, id := range []string{j1.ID, j2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		awaitDone(t, ts.URL, id)
	}
	submit(4)
}

// TestConcurrentRecordingReplay pins the admission-order recording
// contract: a trace recorded under full handler concurrency is valid
// (consecutive seqs, monotone offsets, CRCs intact) and replaying it
// issues exactly the recorded request multiset.
func TestConcurrentRecordingReplay(t *testing.T) {
	s, ts := loadServer(t, t.TempDir())
	var buf bytes.Buffer
	epoch := time.Now()
	tw, err := workload.NewTraceWriter(&buf, "fdaserve", epoch.Unix(),
		func() int64 { return int64(time.Since(epoch)) })
	if err != nil {
		t.Fatal(err)
	}
	s.recorder = tw

	// Mixed traffic from many goroutines. The train posts carry a bogus
	// strategy: recording happens before validation, so they land in the
	// trace but never become jobs — the test exercises concurrency, not
	// training throughput.
	type issue struct{ kind, path, body string }
	const workers, perWorker = 12, 20
	issuedCh := make(chan issue, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				switch (w + i) % 3 {
				case 0:
					body := fmt.Sprintf(`{"model":"lenet5s","strategy":"Nope","seed":%d}`, w*perWorker+i)
					resp, err := http.Post(ts.URL+"/v1/train", "application/json", strings.NewReader(body))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					issuedCh <- issue{"train", "/v1/train", body}
				case 1:
					resp, err := http.Get(ts.URL + "/v1/store")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					issuedCh <- issue{"store", "/v1/store", ""}
				default:
					resp, err := http.Get(ts.URL + "/v1/runs")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					issuedCh <- issue{"status", "/v1/runs", ""}
				}
			}
		}(w)
	}
	wg.Wait()
	close(issuedCh)
	if err := tw.Err(); err != nil {
		t.Fatalf("recorder failed: %v", err)
	}

	issued := map[issue]int{}
	for is := range issuedCh {
		issued[is]++
	}

	// The trace must validate despite arbitrary handler interleaving.
	_, reqs, err := workload.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("concurrently recorded trace fails validation: %v", err)
	}
	if len(reqs) != workers*perWorker {
		t.Fatalf("trace has %d entries, want %d", len(reqs), workers*perWorker)
	}

	// Replaying the trace through the engine issues the same multiset.
	replayed := map[issue]int{}
	var mu sync.Mutex
	target := targetFunc(func(r workload.Request) workload.Outcome {
		mu.Lock()
		replayed[issue{string(r.Kind), r.Path, string(r.Body)}]++
		mu.Unlock()
		return workload.Outcome{Status: 200}
	})
	stats := workload.Run(reqs, target, workload.RunOptions{Clock: instantClock{}})
	if stats.Issued != int64(workers*perWorker) {
		t.Fatalf("replay issued %d requests, want %d", stats.Issued, workers*perWorker)
	}
	for is, n := range issued {
		if replayed[is] != n {
			t.Fatalf("request %+v: recorded %d, replayed %d", is, n, replayed[is])
		}
	}
	if len(replayed) != len(issued) {
		t.Fatalf("replay produced %d distinct requests, issued %d", len(replayed), len(issued))
	}
}

type targetFunc func(workload.Request) workload.Outcome

func (f targetFunc) Do(r workload.Request) workload.Outcome { return f(r) }

// instantClock fires the whole schedule immediately (offsets are only
// ordering here; latency numbers come from the real clock below).
type instantClock struct{}

func (instantClock) Now() int64                               { return 0 }
func (instantClock) WaitUntil(ns int64, stop <-chan struct{}) {}

// httpLoadTarget is the e2e test's client: the same shape as fdaload's
// driver, reduced to the two kinds this test schedules.
type httpLoadTarget struct {
	base   string
	client *http.Client
}

func (h *httpLoadTarget) Do(r workload.Request) workload.Outcome {
	var resp *http.Response
	var err error
	switch r.Kind {
	case workload.KindTrain:
		resp, err = h.client.Post(h.base+"/v1/train", "application/json", bytes.NewReader(r.Body))
	case workload.KindStore:
		resp, err = h.client.Get(h.base + "/v1/store")
	default:
		resp, err = h.client.Get(h.base + "/v1/runs")
	}
	if err != nil {
		return workload.Outcome{Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return workload.Outcome{Status: resp.StatusCode}
}

// wallClock is the test's real-time Clock (test files are outside the
// wallclock lint scope; the production twin lives in cmd/fdaload).
type wallClock struct{ epoch time.Time }

func (c wallClock) Now() int64 { return int64(time.Since(c.epoch)) }
func (c wallClock) WaitUntil(ns int64, stop <-chan struct{}) {
	d := time.Duration(ns - c.Now())
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-stop:
	}
}

// TestLoadE2EThousandConcurrentJobs drives the full path — workload
// schedule → open-loop runner → live fdaserve — and checks that the
// server sustains >=1000 concurrently admitted Tiny training jobs while
// the report carries per-kind latency percentiles. The jobs are
// distributed lenet5s sessions: each is fully admitted and running (its
// fabric coordinator is listening for its worker) but holds no CPU, so
// the test measures concurrency scaling — admission, job bookkeeping,
// sockets — rather than the runner machine's arithmetic throughput.
func TestLoadE2EThousandConcurrentJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-job load test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("load test measures throughput; -race instrumentation distorts it")
	}
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := newServer(st, 2, ctx)
	s.fabricAddr = "127.0.0.1:0" // every job coordinates on its own ephemeral port
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	spec := workload.Spec{
		// ~1.4k requests in a second of schedule time, ~19/20 of them
		// train submissions.
		Arrival:     workload.Arrival{Process: "poisson", Rate: 1400},
		DurationSec: 1,
		Seed:        99,
		Mix: []workload.MixEntry{
			{Kind: workload.KindTrain, Weight: 20, Train: &workload.TrainTemplate{
				// Tiny scale: lenet5s, one worker per job. Distinct seeds
				// per request defeat dedupe, so every submission is its
				// own admitted job.
				Model: "lenet5s", Strategy: "LinearFDA", K: 1, Batch: 8,
				Steps: 30, EvalEvery: 30, SeedBase: 10000, Distributed: true,
			}},
			{Kind: workload.KindStore, Weight: 1},
			{Kind: workload.KindStatus, Weight: 1},
		},
	}
	reqs, err := spec.Schedule()
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	trains := 0
	for _, r := range reqs {
		if r.Kind == workload.KindTrain {
			trains++
		}
	}
	if trains < 1000 {
		t.Fatalf("schedule has %d train requests, need >=1000 (raise Rate)", trains)
	}

	target := &httpLoadTarget{base: ts.URL, client: &http.Client{
		Transport: &http.Transport{MaxIdleConnsPerHost: 2048},
		Timeout:   2 * time.Minute,
	}}
	stats := workload.Run(reqs, target, workload.RunOptions{
		Clock:       wallClock{epoch: time.Now()},
		MaxInFlight: 2048,
		DurationNS:  int64(spec.DurationSec * 1e9),
	})

	// Every submission has returned and no held job can finish on its
	// own, so the in-flight counter now reads the sustained concurrency.
	peak := s.active.Load()

	// Release: cancelling the base context closes every coordinator,
	// driving every job to a terminal status.
	cancel()
	deadline := time.Now().Add(2 * time.Minute)
	for s.active.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs still in flight after release", s.active.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.drain()

	if stats.Errors != 0 {
		t.Fatalf("run reported %d unexpected errors: %+v", stats.Errors, stats)
	}
	if stats.Issued != int64(len(reqs)) || stats.OK != stats.Issued {
		t.Fatalf("issued/ok = %d/%d, want %d/%d", stats.Issued, stats.OK, len(reqs), len(reqs))
	}
	if peak < 1000 {
		t.Fatalf("peak concurrent jobs = %d, want >=1000", peak)
	}
	t.Logf("peak concurrent jobs: %d; achieved %.0f rps", peak, stats.AchievedRPS)

	// The report must carry per-kind percentiles for every scheduled kind.
	report := workload.BuildReport(&spec, stats, nil)
	wantOps := map[string]bool{"Load/train": false, "Load/store": false, "Load/status": false, "Load/total": false}
	for _, b := range report.Benchmarks {
		if _, ok := wantOps[b.Op]; ok {
			wantOps[b.Op] = true
		}
		if b.Op == "Load/train" {
			for _, m := range []string{"p50_ms", "p95_ms", "p99_ms"} {
				if _, ok := b.Metrics[m]; !ok {
					t.Fatalf("Load/train benchmark missing %s metric: %+v", m, b.Metrics)
				}
			}
		}
	}
	for op, seen := range wantOps {
		if !seen {
			t.Fatalf("report missing %s series: %+v", op, report.Benchmarks)
		}
	}
}
