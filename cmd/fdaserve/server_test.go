package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runstore"
)

func testServer(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(st, 2, context.Background()).routes())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
}

func postJSON(t *testing.T, url, body string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decoding: %v", url, err)
		}
	}
}

// awaitDone polls a run until it leaves "running".
func awaitDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		var v jobView
		getJSON(t, base+"/v1/runs/"+id, http.StatusOK, &v)
		if v.Status != "running" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still executing after timeout: %+v", id, v)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestServeEndpointsAndValidation(t *testing.T) {
	ts := testServer(t, t.TempDir())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	var version map[string]string
	getJSON(t, ts.URL+"/v1/version", http.StatusOK, &version)
	if !strings.Contains(version["version"], "fdaserve") {
		t.Fatalf("version endpoint: %v", version)
	}

	var exps []struct{ Name, Artifact string }
	getJSON(t, ts.URL+"/v1/experiments", http.StatusOK, &exps)
	if len(exps) < 13 || exps[0].Name != "table2" {
		t.Fatalf("experiments listing: %+v", exps)
	}

	// Empty registry state.
	var manifests []runstore.Manifest
	getJSON(t, ts.URL+"/v1/store", http.StatusOK, &manifests)
	if len(manifests) != 0 {
		t.Fatalf("fresh store lists %d entries", len(manifests))
	}
	var views []jobView
	getJSON(t, ts.URL+"/v1/runs", http.StatusOK, &views)
	if len(views) != 0 {
		t.Fatalf("fresh server lists %d runs", len(views))
	}

	// Validation failures.
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"fig99"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"fig3","scale":"huge"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/runs", `not json`, http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/runs/r404", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/runs/r404/records", http.StatusNotFound, nil)
}

func TestServeRunLifecycleAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training sweep")
	}
	dir := t.TempDir()
	ts := testServer(t, dir)
	submit := `{"experiment":"smoke","scale":"tiny","seed":3}`

	// Submit; identical resubmission dedupes onto the same job.
	var created jobView
	postJSON(t, ts.URL+"/v1/runs", submit, http.StatusAccepted, &created)
	if created.ID == "" || created.Experiment != "smoke" || created.Seed != 3 {
		t.Fatalf("submit view: %+v", created)
	}
	var dup jobView
	postJSON(t, ts.URL+"/v1/runs", submit, http.StatusOK, &dup)
	if dup.ID != created.ID {
		t.Fatalf("identical spec created a second job: %s vs %s", dup.ID, created.ID)
	}

	done := awaitDone(t, ts.URL, created.ID)
	if done.Status != "done" || done.Error != "" {
		t.Fatalf("run failed: %+v", done)
	}
	if done.Cells == 0 || done.Executed != done.Cells || done.Cached != 0 {
		t.Fatalf("cold run stats: %+v", done)
	}

	// Records of a finished run decode into the record shape.
	var recs struct {
		ID      string `json:"id"`
		Records []struct {
			Figure   string  `json:"Figure"`
			Strategy string  `json:"Strategy"`
			Target   float64 `json:"Target"`
		} `json:"records"`
	}
	getJSON(t, ts.URL+"/v1/runs/"+created.ID+"/records", http.StatusOK, &recs)
	if len(recs.Records) == 0 || recs.Records[0].Figure != "smoke" {
		t.Fatalf("records endpoint: %+v", recs)
	}

	// Rendered output is served, and the registry catalog filled up.
	out, err := http.Get(ts.URL + "/v1/runs/" + created.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := fmt.Fprint(body, readAll(t, out)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "smoke") {
		t.Fatalf("output endpoint missing table: %q", body.String())
	}
	var manifests []runstore.Manifest
	getJSON(t, ts.URL+"/v1/store", http.StatusOK, &manifests)
	if len(manifests) != int(done.Cells) {
		t.Fatalf("store lists %d entries for %d cells", len(manifests), done.Cells)
	}

	// A second service instance over the same registry serves the whole
	// sweep from cache: zero executed cells.
	ts2 := testServer(t, dir)
	var again jobView
	postJSON(t, ts2.URL+"/v1/runs", submit, http.StatusAccepted, &again)
	warm := awaitDone(t, ts2.URL, again.ID)
	if warm.Status != "done" || warm.Executed != 0 || warm.Cached != done.Cells {
		t.Fatalf("warm run stats: %+v", warm)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
