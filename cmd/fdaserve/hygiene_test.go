package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/runstore"
)

// TestTrainFailureDropsCheckpoint pins the orphan-checkpoint fix: a
// train job that fails terminally must remove its session checkpoint,
// even when the failure is a panic out of session construction.
func TestTrainFailureDropsCheckpoint(t *testing.T) {
	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(st, 2, context.Background())
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)

	// Plant a stale checkpoint under the exact key the submission will
	// compute; a negative Θ makes the strategy's Init panic, so the job
	// fails before a single step.
	req := trainRequest{TrainSpec: cluster.TrainSpec{Model: "lenet5s", Strategy: "SketchFDA", Theta: -1, K: 3, Steps: 40}}
	req.withDefaults()
	ckpt := s.checkpointPath(req.canonicalKey())
	if err := os.MkdirAll(filepath.Dir(ckpt), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	var v jobView
	postJSON(t, ts.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"SketchFDA","theta":-1,"k":3,"steps":40}`,
		http.StatusAccepted, &v)
	waitStatus(t, ts, v.ID, statusFailed)
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("failed train job left checkpoint %s (stat err %v)", ckpt, err)
	}
}

// TestSweepSessionCheckpoints pins the startup TTL sweep: checkpoints
// older than the TTL go, fresh ones and foreign files stay.
func TestSweepSessionCheckpoints(t *testing.T) {
	dir := t.TempDir()
	sessions := filepath.Join(dir, "sessions")
	if err := os.MkdirAll(sessions, 0o755); err != nil {
		t.Fatal(err)
	}
	old := filepath.Join(sessions, "deadbeef.ckpt")
	fresh := filepath.Join(sessions, "cafef00d.ckpt")
	other := filepath.Join(sessions, "notes.txt")
	for _, p := range []string{old, fresh, other} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(old, stale, stale); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(other, stale, stale); err != nil {
		t.Fatal(err)
	}

	if n := sweepSessionCheckpoints(dir, 24*time.Hour); n != 1 {
		t.Fatalf("swept %d checkpoints, want 1", n)
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Fatal("expired checkpoint survived the sweep")
	}
	for _, p := range []string{fresh, other} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sweep removed %s: %v", p, err)
		}
	}
	// No sessions directory at all is a quiet no-op.
	if n := sweepSessionCheckpoints(t.TempDir(), time.Hour); n != 0 {
		t.Fatalf("sweep of empty store removed %d", n)
	}
}

// TestJournalRecovery pins the journal read-back: after a restart, jobs
// journaled mid-run resurface as "interrupted" in /v1/runs, their keys
// give way to resubmissions, the ID counter continues past every
// journaled ID, and the journal file is compacted to one line per job.
func TestJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// First server life: one sweep runs to completion, a second is
	// journaled as running and never transitions (simulating a crash).
	first := newServer(st, 2, context.Background())
	ts := httptest.NewServer(first.routes())
	var done jobView
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":1}`, http.StatusAccepted, &done)
	waitStatus(t, ts, done.ID, statusDone)
	ts.Close()
	crashed := jobView{ID: "r7", Kind: "sweep", Experiment: "smoke", Scale: "tiny", Seed: 9,
		Status: statusRunning, Cells: 2, Executed: 1}
	first.journal.record(crashed, "sweep|smoke|tiny|9")
	// A torn tail line (crash mid-append) must not poison recovery.
	if err := appendLine(filepath.Join(dir, "jobs.jsonl"), []byte(`{"time":"2026-08-08T0`)); err != nil {
		t.Fatal(err)
	}

	// Second life over the same store directory.
	second := newServer(st, 2, context.Background())
	second.recoverJournal()
	ts2 := httptest.NewServer(second.routes())
	t.Cleanup(ts2.Close)

	var views []jobView
	getJSON(t, ts2.URL+"/v1/runs", http.StatusOK, &views)
	if len(views) != 1 {
		t.Fatalf("recovered %d jobs, want 1 (the interrupted one): %+v", len(views), views)
	}
	v := views[0]
	if v.ID != "r7" || v.Status != statusInterrupted || v.Error == "" {
		t.Fatalf("recovered job = %+v", v)
	}
	if v.Cells != 2 || v.Executed != 1 {
		t.Fatalf("recovered job lost its progress counters: %+v", v)
	}
	var m metricsView
	getJSON(t, ts2.URL+"/v1/metrics", http.StatusOK, &m)
	if m.Jobs.Interrupted != 1 {
		t.Fatalf("metrics interrupted = %d, want 1", m.Jobs.Interrupted)
	}
	// Records of an interrupted job are a conflict, not a null payload.
	getJSON(t, ts2.URL+"/v1/runs/r7/records", http.StatusConflict, nil)

	// The journal is compacted to one line per job, torn tail dropped.
	b, err := os.ReadFile(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(strings.TrimSpace(string(b)), "\n") + 1; n != 2 {
		t.Fatalf("compacted journal holds %d lines, want 2:\n%s", n, b)
	}

	// Resubmitting the interrupted spec starts a fresh job with a fresh
	// ID past every journaled one — the interrupted shell gave way.
	var re jobView
	postJSON(t, ts2.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":9}`, http.StatusAccepted, &re)
	if re.ID != "r8" {
		t.Fatalf("resubmission got ID %s, want r8 (counter continues past journal)", re.ID)
	}
	waitStatus(t, ts2, re.ID, statusDone)
}
