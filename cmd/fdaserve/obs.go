package main

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is fdaserve's observability surface (DESIGN.md §11): the
// instrument middleware wraps the whole API with per-route latency
// histograms, status-code counters and a structured access log, and
// GET /metrics exposes the process-wide registry — session, fabric,
// runstore and HTTP telemetry alike — as Prometheus text.

// Job scheduling telemetry. Queue wait is the admission→start interval
// (zero-ish under the in-process executor, real under a queueing one);
// run time is start→terminal-status per job kind.
var (
	jobQueueWait = obs.Default.Histogram("fdaserve_job_queue_wait_seconds",
		"Delay between a job's admission and its execute goroutine starting.", obs.Seconds)
	jobRunSweep = obs.Default.Histogram("fdaserve_job_run_seconds",
		"Job wall-clock from execution start to terminal status.", obs.Seconds, "kind", "sweep")
	jobRunTrain = obs.Default.Histogram("fdaserve_job_run_seconds",
		"Job wall-clock from execution start to terminal status.", obs.Seconds, "kind", "train")
	// jobsRejected counts submissions refused by the -max-queue
	// admission cap (503 + Retry-After) — shed load, observable apart
	// from failures.
	jobsRejected = obs.Default.Counter("fdaserve_jobs_rejected_total",
		"Job submissions refused by the -max-queue admission cap.")
	// jobsInFlight/jobsMaxQueue expose the admission window as gauges so
	// Prometheus (and fdagate's poller) can see headroom, not just
	// rejections after the fact. Sampled at scrape time.
	jobsInFlight = obs.Default.Gauge("fdaserve_jobs_in_flight",
		"Admitted jobs that have not reached a terminal status.")
	jobsMaxQueue = obs.Default.Gauge("fdaserve_jobs_max_queue",
		"The -max-queue admission cap (0 = unbounded).")
)

// sampleAdmissionGauges refreshes the admission gauges from the live
// counters; both metrics endpoints call it before reading the registry.
func (s *server) sampleAdmissionGauges() {
	jobsInFlight.Set(float64(s.active.Load()))
	jobsMaxQueue.Set(float64(s.maxQueue))
}

func jobRunSeconds(kind string) *obs.Histogram {
	if kind == "train" {
		return jobRunTrain
	}
	return jobRunSweep
}

// httpTele caches the per-route metric handles so the middleware does
// one sync.Map load per request instead of a registry lookup (same
// idiom as the fabric's meter counters).
type httpTele struct {
	seconds *obs.Histogram
	byCode  sync.Map // status code (int) -> *obs.Counter
}

var httpRoutes sync.Map // route pattern -> *httpTele

func httpTeleFor(route string) *httpTele {
	if t, ok := httpRoutes.Load(route); ok {
		return t.(*httpTele)
	}
	t := &httpTele{seconds: obs.Default.Histogram("fdaserve_http_request_seconds",
		"HTTP request latency by route pattern.", obs.Seconds, "route", route)}
	actual, _ := httpRoutes.LoadOrStore(route, t)
	return actual.(*httpTele)
}

func (t *httpTele) counter(route string, code int) *obs.Counter {
	if c, ok := t.byCode.Load(code); ok {
		return c.(*obs.Counter)
	}
	c := obs.Default.Counter("fdaserve_http_requests_total",
		"HTTP requests by route pattern and status code.", "route", route, "code", strconv.Itoa(code))
	actual, _ := t.byCode.LoadOrStore(code, c)
	return actual.(*obs.Counter)
}

// statusWriter records the response status for the middleware. It must
// implement http.Flusher: the SSE endpoint streams through it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API mux with telemetry and access logging. The
// route label is the mux pattern (r.Pattern is populated by ServeMux on
// the same request value, so it is readable here after ServeHTTP), so
// /v1/runs/r1 and /v1/runs/r2 share the /v1/runs/{id} series instead of
// exploding cardinality.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "(unmatched)"
		}
		dur := time.Since(start)
		t := httpTeleFor(route)
		t.seconds.Observe(int64(dur))
		t.counter(route, sw.status).Inc()
		if s.accessLog != nil {
			attrs := []any{
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("dur", dur),
			}
			if id := r.PathValue("id"); id != "" {
				attrs = append(attrs, slog.String("job", id))
			}
			s.accessLog.Info("access", attrs...)
		}
	})
}

// handlePromMetrics implements GET /metrics: the Prometheus text
// exposition of the process-wide registry plus a fixed set of
// runtime/metrics samples. GET /v1/metrics is its JSON twin.
func (s *server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	s.sampleAdmissionGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := obs.Default.WritePrometheus(w); err != nil {
		return // client went away; nothing to salvage
	}
	_ = obs.WriteRuntimeMetrics(w)
}
