package main

import (
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestDrainAndDerivedRetryAfter pins the scale-out admission surface: the
// drain toggle refuses new work while letting in-flight jobs finish, the
// /v1/metrics admission block mirrors the gate, and over-cap 503s carry a
// Retry-After derived from observed job runtimes rather than a constant.
func TestDrainAndDerivedRetryAfter(t *testing.T) {
	s, ts := loadServer(t, t.TempDir())
	s.maxQueue = 2

	// A completed job seeds the jobRun histograms the Retry-After
	// derivation reads.
	var warm jobView
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":1}`,
		http.StatusAccepted, &warm)
	awaitDone(t, ts.URL, warm.ID)

	// Drain on: healthz degrades, submissions bounce with the draining
	// flag set, reads and the admission block stay live.
	postJSON(t, ts.URL+"/v1/drain", "", http.StatusOK, nil)
	var hz struct {
		Status  string `json:"status"`
		Replica string `json:"replica"`
	}
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &hz)
	if hz.Status != "draining" {
		t.Fatalf("healthz status %q while draining, want draining", hz.Status)
	}
	resp, err := http.Post(ts.URL+"/v1/train", "application/json",
		strings.NewReader(`{"model":"lenet5s","strategy":"LinearFDA","k":1,"batch":8,"steps":100000,"seed":50}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", resp.StatusCode)
	}
	var m metricsView
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if !m.Admission.Draining || m.Admission.MaxQueue != 2 {
		t.Fatalf("admission block %+v, want draining=true max_queue=2", m.Admission)
	}

	// Drain off: the gate reopens.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/drain", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	// Fill the queue with held jobs; the over-cap 503 must carry an
	// integral Retry-After in the clamp range, consistent with the body.
	submit := func(seed int) jobView {
		var v jobView
		postJSON(t, ts.URL+"/v1/train",
			"{\"model\":\"lenet5s\",\"strategy\":\"LinearFDA\",\"k\":1,\"batch\":8,\"steps\":100000,\"eval_every\":50000,\"seed\":"+strconv.Itoa(seed)+"}",
			http.StatusAccepted, &v)
		return v
	}
	j1, j2 := submit(51), submit(52)
	over, err := http.Post(ts.URL+"/v1/train", "application/json",
		strings.NewReader(`{"model":"lenet5s","strategy":"LinearFDA","k":1,"batch":8,"steps":100000,"seed":53}`))
	if err != nil {
		t.Fatal(err)
	}
	defer over.Body.Close()
	if over.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap submit = %d, want 503", over.StatusCode)
	}
	sec, err := strconv.Atoi(over.Header.Get("Retry-After"))
	if err != nil || sec < 1 || sec > 30 {
		t.Fatalf("Retry-After %q, want an integer in [1,30]", over.Header.Get("Retry-After"))
	}

	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &m)
	if m.Admission.InFlight != 2 || m.Admission.Draining {
		t.Fatalf("admission block %+v, want in_flight=2 draining=false", m.Admission)
	}

	for _, id := range []string{j1.ID, j2.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		awaitDone(t, ts.URL, id)
	}
}
