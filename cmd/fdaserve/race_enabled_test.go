//go:build race

package main

// raceEnabled reports that this test binary was built with -race. The
// thousand-job load test is a throughput exercise; under race
// instrumentation it would measure the detector, not the server.
const raceEnabled = true
