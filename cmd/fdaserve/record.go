package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"repro/internal/workload"
)

// This file is fdaserve's trace-recording surface (DESIGN.md §13):
// with -record, every workload-relevant API request is journaled to a
// tracev1 file in admission order — sequence number and offset are
// assigned under the trace writer's lock, so concurrent handlers
// cannot interleave entries — and the file replays against any server
// via `fdaload -replay`. Recording reads the request before the
// handler runs and never blocks on it: a failed trace write disables
// recording, not the API.

// recordKind classifies a request into its workload kind before
// dispatch (mux patterns are not resolved yet at recording time, so
// the mapping is by method and literal path shape). Requests outside
// the workload surface — health, metrics, events streams, output —
// are not recorded: a trace captures load, not monitoring.
func recordKind(method, path string) (workload.Kind, bool) {
	switch method {
	case http.MethodPost:
		switch path {
		case "/v1/train":
			return workload.KindTrain, true
		case "/v1/runs":
			return workload.KindSweep, true
		}
	case http.MethodGet:
		switch {
		case path == "/v1/store":
			return workload.KindStore, true
		case path == "/v1/runs":
			return workload.KindStatus, true
		case strings.HasPrefix(path, "/v1/runs/"):
			rest := path[len("/v1/runs/"):]
			if !strings.Contains(rest, "/") {
				return workload.KindStatus, true
			}
			if strings.HasSuffix(rest, "/records") {
				return workload.KindRecords, true
			}
		}
	case http.MethodDelete:
		if strings.HasPrefix(path, "/v1/runs/") {
			return workload.KindCancel, true
		}
	}
	return "", false
}

// record wraps the API with the trace recorder. POST bodies are read
// once here and replayed to the handler from memory; only valid JSON
// bodies are journaled (a malformed body is the client's bug and gets
// its 400 from the handler — the trace stays replayable).
func (s *server) record(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The recorder check is per-request: tests (and a future runtime
		// toggle) wire it after routes() has built the chain.
		if kind, ok := recordKind(r.Method, r.URL.Path); ok && s.recorder != nil {
			var body json.RawMessage
			if r.Method == http.MethodPost && r.Body != nil {
				b, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
				r.Body.Close()
				r.Body = io.NopCloser(bytes.NewReader(b))
				if err == nil && json.Valid(b) {
					body = b
				}
			}
			s.recorder.Record(kind, r.URL.Path, body)
		}
		next.ServeHTTP(w, r)
	})
}
