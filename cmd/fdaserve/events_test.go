package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/runstore"
)

// TestEventsSlowConsumerNoLeak pins the SSE endpoint's failure modes:
// a subscriber that stops reading must not stall the training run (the
// broker drops events rather than block), a subscriber that disconnects
// mid-run must not strand its handler, and once the job finishes and
// every client is gone the server holds no leftover goroutines.
func TestEventsSlowConsumerNoLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training session")
	}
	baseline := runtime.NumGoroutine()

	st, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(st, 2, context.Background())
	ts := httptest.NewServer(srv.routes())

	var v jobView
	postJSON(t, ts.URL+"/v1/train",
		`{"model":"lenet5s","strategy":"LinearFDA","k":2,"batch":8,"steps":120,"eval_every":30,"seed":11}`,
		http.StatusAccepted, &v)

	// Slow consumer: subscribes, reads one byte, then never drains again.
	slow, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := slow.Body.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}

	// Disconnecting consumer: reads a little, then drops mid-run.
	drop, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := drop.Body.Read(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	drop.Body.Close()

	final := waitStatus(t, ts, v.ID, statusDone)
	if final.Steps != 120 {
		t.Fatalf("run finished at %d steps, want 120 — a consumer stalled it", final.Steps)
	}

	slow.Body.Close()
	ts.Close()
	srv.drain()

	// Everything is shut down; the goroutine count must return to the
	// pre-test baseline (modulo runtime noise). Idle client connections
	// are flushed each round so their transport goroutines don't read as
	// server leaks.
	deadline := time.Now().Add(10 * time.Second)
	for {
		http.DefaultClient.CloseIdleConnections()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
