package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
	"repro/internal/runstore"
)

// killableReplica is a real fdaserve instance whose HTTP front can be
// "killed" (connections reset without a response) and revived, without
// tearing down the job runner underneath — exactly what the gateway
// sees when a replica process dies and later restarts on the same port.
type killableReplica struct {
	ts   *httptest.Server
	down atomic.Bool
}

func newKillableReplica(t *testing.T, dir string) *killableReplica {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inner := newServer(st, 2, context.Background()).routes()
	r := &killableReplica{}
	r.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r.down.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err != nil {
				panic(err)
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, req)
	}))
	t.Cleanup(r.ts.Close)
	return r
}

func sweepBody(seed int) string {
	return fmt.Sprintf(`{"experiment":"smoke","scale":"tiny","seed":%d}`, seed)
}

// sweepOwnedBy scans seeds until it finds a sweep spec whose affinity
// owner is the wanted replica, so tests can aim traffic deterministically.
func sweepOwnedBy(t *testing.T, pool *cluster.Pool, base string, startSeed int) (string, int) {
	t.Helper()
	for seed := startSeed; seed <= startSeed+64; seed++ {
		body := sweepBody(seed)
		addr, ok := cluster.AffinityAddress("sweep", []byte(body))
		if !ok {
			t.Fatalf("sweep body %q has no affinity address", body)
		}
		if pool.Rank(addr)[0].Base == base {
			return body, seed
		}
	}
	t.Fatalf("no seed in %d..%d hashes to replica %s", startSeed, startSeed+64, base)
	return "", 0
}

// TestGatewayEndToEnd drives real fdaserve replicas behind a real
// cluster.Gateway: cache-affinity dedupe across resubmission, routing
// parity (gateway results byte-identical to direct submission), failover
// around a killed replica mid-traffic, and rejoin after recovery.
func TestGatewayEndToEnd(t *testing.T) {
	shared := t.TempDir()
	r1 := newKillableReplica(t, shared)
	r2 := newKillableReplica(t, shared)

	// Deterministic injected clock: the test owns quarantine windows.
	var clock atomic.Int64
	now := func() int64 { return clock.Load() }
	pool, err := cluster.NewPool([]string{r1.ts.URL, r2.ts.URL}, cluster.Options{Now: now})
	if err != nil {
		t.Fatal(err)
	}
	gw := cluster.NewGateway(pool, cluster.GatewayOptions{Now: now})
	gwts := httptest.NewServer(gw.Handler())
	t.Cleanup(gwts.Close)

	bodyA, _ := sweepOwnedBy(t, pool, r1.ts.URL, 1)
	bodyB, _ := sweepOwnedBy(t, pool, r2.ts.URL, 1)
	prefixOf := func(base string) string {
		for _, v := range pool.Views() {
			if v.Base == base {
				return v.Prefix
			}
		}
		t.Fatalf("no replica with base %s", base)
		return ""
	}

	// --- Cache-affinity + dedupe: the submission lands on its affinity
	// owner, and resubmitting the identical spec through the gateway is a
	// dedupe hit (200, same namespaced id) because affinity routing sends
	// it back to the replica that already owns the job.
	var first jobView
	postJSON(t, gwts.URL+"/v1/runs", bodyA, http.StatusAccepted, &first)
	wantPrefix := prefixOf(r1.ts.URL) + "-"
	if len(first.ID) <= len(wantPrefix) || first.ID[:len(wantPrefix)] != wantPrefix {
		t.Fatalf("job id %q not namespaced by affinity owner prefix %q", first.ID, wantPrefix)
	}
	if done := awaitDone(t, gwts.URL, first.ID); done.Status != statusDone {
		t.Fatalf("gateway job finished %q (err %q), want done", done.Status, done.Error)
	}
	var again jobView
	postJSON(t, gwts.URL+"/v1/runs", bodyA, http.StatusOK, &again)
	if again.ID != first.ID {
		t.Fatalf("resubmitted spec got id %s, want dedupe hit on %s", again.ID, first.ID)
	}

	// --- Routing parity: the same spec executed on a standalone server
	// (own store) yields byte-identical records to the gateway run.
	direct := testServer(t, t.TempDir())
	var dv jobView
	postJSON(t, direct.URL+"/v1/runs", bodyA, http.StatusAccepted, &dv)
	if done := awaitDone(t, direct.URL, dv.ID); done.Status != statusDone {
		t.Fatalf("direct job finished %q (err %q), want done", done.Status, done.Error)
	}
	var viaGateway, viaDirect map[string]json.RawMessage
	getJSON(t, gwts.URL+"/v1/runs/"+first.ID+"/records", http.StatusOK, &viaGateway)
	getJSON(t, direct.URL+"/v1/runs/"+dv.ID+"/records", http.StatusOK, &viaDirect)
	if string(viaGateway["records"]) != string(viaDirect["records"]) {
		t.Fatalf("routing changed results:\ngateway: %.200s\ndirect:  %.200s",
			viaGateway["records"], viaDirect["records"])
	}

	// --- Failover: kill r1 mid-traffic. A job already running on the
	// survivor is unaffected, and a spec whose affinity owner is the dead
	// replica fails over to the survivor instead of erroring.
	orphanSpec, _ := sweepOwnedBy(t, pool, r1.ts.URL, 1000)
	var onSurvivor jobView
	postJSON(t, gwts.URL+"/v1/runs", bodyB, http.StatusAccepted, &onSurvivor)
	r1.down.Store(true)
	var failedOver jobView
	postJSON(t, gwts.URL+"/v1/runs", orphanSpec, http.StatusAccepted, &failedOver)
	survivorPrefix := prefixOf(r2.ts.URL) + "-"
	if failedOver.ID[:len(survivorPrefix)] != survivorPrefix {
		t.Fatalf("failover job id %q not on survivor (prefix %q)", failedOver.ID, survivorPrefix)
	}
	if done := awaitDone(t, gwts.URL, onSurvivor.ID); done.Status != statusDone {
		t.Fatalf("survivor's in-flight job finished %q (err %q), want done", done.Status, done.Error)
	}
	if done := awaitDone(t, gwts.URL, failedOver.ID); done.Status != statusDone {
		t.Fatalf("failed-over job finished %q (err %q), want done", done.Status, done.Error)
	}

	// --- Rejoin: r1 comes back; once its quarantine window elapses the
	// poll probe reinstates it and affinity traffic returns.
	r1.down.Store(false)
	clock.Add(60e9)
	pool.Poll(t.Context())
	var cl struct {
		Replicas []cluster.View `json:"replicas"`
	}
	getJSON(t, gwts.URL+"/v1/cluster", http.StatusOK, &cl)
	for _, v := range cl.Replicas {
		if !v.Healthy {
			t.Fatalf("replica %s still unhealthy after recovery poll: %+v", v.Base, v)
		}
	}
	bodyC, _ := sweepOwnedBy(t, pool, r1.ts.URL, 2000)
	var rejoined jobView
	postJSON(t, gwts.URL+"/v1/runs", bodyC, http.StatusAccepted, &rejoined)
	if done := awaitDone(t, gwts.URL, rejoined.ID); done.Status != statusDone {
		t.Fatalf("post-rejoin job finished %q (err %q), want done", done.Status, done.Error)
	}
}
