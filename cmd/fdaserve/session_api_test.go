package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/runstore"
)

// httptestServer serves an already-built server instance (tests that
// need control over its base context).
func httptestServer(t *testing.T, s *server) string {
	t.Helper()
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return ts.URL
}

// trainBody is the canonical training spec the session-API tests share.
const trainBody = `{"model":"lenet5s","strategy":"LinearFDA","k":3,"batch":16,"steps":400,"eval_every":40,"seed":5}`

// trainWant recomputes, in-process, the Result the trainBody spec must
// produce — the server builds its config through the same deterministic
// path (models.ByName + DatasetFor), so any divergence is a server bug.
func trainWant(t *testing.T) core.Result {
	t.Helper()
	spec, err := models.ByName("lenet5s")
	if err != nil {
		t.Fatal(err)
	}
	train, test := models.DatasetFor(spec, 5)
	cfg := core.Config{
		K: 3, BatchSize: 16, Seed: 5,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		MaxSteps: 400, EvalEvery: 40,
	}
	res, err := core.Run(cfg, core.NewLinearFDA(spec.ThetaGrid[1]))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// awaitSteps polls a train job until it has taken at least n steps.
func awaitSteps(t *testing.T, base, id string, n int64) jobView {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		var v jobView
		getJSON(t, base+"/v1/runs/"+id, http.StatusOK, &v)
		if v.Steps >= n || v.Status != "running" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s never reached %d steps: %+v", id, n, v)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// deleteRun issues DELETE /v1/runs/{id} and decodes the final view.
func deleteRun(t *testing.T, base, id string, wantCode int) jobView {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/runs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("DELETE %s = %d, want %d", id, resp.StatusCode, wantCode)
	}
	var v jobView
	_ = json.NewDecoder(resp.Body).Decode(&v)
	return v
}

// TestTrainValidationErrors: the submit endpoint rejects bad specs with
// structured field errors before any job is created.
func TestTrainValidationErrors(t *testing.T) {
	ts := testServer(t, t.TempDir())
	postJSON(t, ts.URL+"/v1/train", `{"strategy":"LinearFDA"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/train", `{"model":"nope","strategy":"LinearFDA"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/train", `{"model":"lenet5s","strategy":"Nope"}`, http.StatusBadRequest, nil)
	postJSON(t, ts.URL+"/v1/train", `{"model":"lenet5s","strategy":"LinearFDA","het":"bogus"}`, http.StatusBadRequest, nil)

	var errResp struct {
		Error  string `json:"error"`
		Fields []struct {
			Field string `json:"field"`
			Msg   string `json:"msg"`
		} `json:"fields"`
	}
	postJSON(t, ts.URL+"/v1/train", `{"model":"lenet5s","strategy":"LinearFDA","k":-2}`,
		http.StatusBadRequest, &errResp)
	if len(errResp.Fields) == 0 || errResp.Fields[0].Field != "K" {
		t.Fatalf("structured field errors missing: %+v", errResp)
	}

	var views []jobView
	getJSON(t, ts.URL+"/v1/runs", http.StatusOK, &views)
	if len(views) != 0 {
		t.Fatalf("rejected submissions created %d jobs", len(views))
	}
}

// TestTrainSSEStreamsLiveEvents: the events endpoint streams a live
// run's typed events and ends with a terminal status after completion.
func TestTrainSSEStreamsLiveEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training session")
	}
	ts := testServer(t, t.TempDir())
	var created jobView
	postJSON(t, ts.URL+"/v1/train", trainBody, http.StatusAccepted, &created)
	if created.Kind != "train" || created.Status != "running" {
		t.Fatalf("train submit view: %+v", created)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + created.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	events := map[string]int{}
	var lastStatus string
	scanner := bufio.NewScanner(resp.Body)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events[event]++
		case strings.HasPrefix(line, "data: ") && event == "status":
			var v jobView
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
				t.Fatalf("status payload: %v", err)
			}
			lastStatus = v.Status
		}
	}
	// The stream closed because the run finished (broker close), not a
	// client timeout, so the terminal status must be "done".
	if lastStatus != "done" {
		t.Fatalf("terminal SSE status %q, events %v", lastStatus, events)
	}
	if events["step"] == 0 || events["eval"] == 0 || events["done"] != 1 {
		t.Fatalf("event counts %v: want live step and eval events and one done", events)
	}

	final := awaitDone(t, ts.URL, created.ID)
	if final.Status != "done" || final.Steps != 400 {
		t.Fatalf("final view: %+v", final)
	}
}

// TestTrainCancelResumeExact is the cancelled-then-resumed parity
// contract end to end over HTTP: DELETE a mid-flight training session
// (the store records the cancelled status and a resume checkpoint),
// resubmit the identical spec, and the resumed job's final records must
// equal — bit for bit — an uninterrupted in-process run.
func TestTrainCancelResumeExact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training session twice")
	}
	dir := t.TempDir()
	ts := testServer(t, dir)
	want := trainWant(t)

	var created jobView
	postJSON(t, ts.URL+"/v1/train", trainBody, http.StatusAccepted, &created)
	mid := awaitSteps(t, ts.URL, created.ID, 25)
	if mid.Status != "running" {
		t.Fatalf("run finished before it could be cancelled: %+v (raise steps)", mid)
	}

	cancelled := deleteRun(t, ts.URL, created.ID, http.StatusOK)
	if cancelled.Status != "cancelled" {
		t.Fatalf("DELETE left status %q", cancelled.Status)
	}
	// The store directory records both the cancelled status (journal)
	// and the session checkpoint that funds the resume.
	journal, err := os.ReadFile(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), `"status":"cancelled"`) {
		t.Fatalf("journal lacks cancelled status:\n%s", journal)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "sessions", "*.ckpt"))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("resume checkpoints on disk: %v (%v)", ckpts, err)
	}
	// Records of a cancelled run conflict rather than serve partials.
	getJSON(t, ts.URL+"/v1/runs/"+created.ID+"/records", http.StatusConflict, nil)

	// Resubmit: a fresh job restores the checkpoint and continues.
	var resumedView jobView
	postJSON(t, ts.URL+"/v1/train", trainBody, http.StatusAccepted, &resumedView)
	if resumedView.ID == created.ID {
		t.Fatal("cancelled job did not give way to a resubmission")
	}
	final := awaitDone(t, ts.URL, resumedView.ID)
	if final.Status != "done" {
		t.Fatalf("resumed run: %+v", final)
	}
	if !final.Resumed {
		t.Fatal("resubmission did not restore the checkpoint")
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "sessions", "*.ckpt")); len(left) != 0 {
		t.Fatalf("checkpoint not cleaned up after completion: %v", left)
	}

	var recs struct {
		Records core.Result `json:"records"`
	}
	getJSON(t, ts.URL+"/v1/runs/"+resumedView.ID+"/records", http.StatusOK, &recs)
	if !reflect.DeepEqual(recs.Records, want) {
		t.Fatalf("cancelled-then-resumed run diverged from uninterrupted run:\nwant: %v\ngot:  %v", want, recs.Records)
	}
}

// TestSweepCancelAndStoreResume: DELETE stops a sweep between cells;
// the completed cells persist, and a resubmission executes only the
// remainder.
func TestSweepCancelAndStoreResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training sweep")
	}
	dir := t.TempDir()
	ts := testServer(t, dir)

	var created jobView
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":7}`, http.StatusAccepted, &created)

	// Cancel immediately: the two smoke cells take long enough that the
	// context fires before the grid drains. If the sweep nevertheless
	// raced to completion, DELETE conflicts — tolerated, but then this
	// run exercised nothing (the session tests cover cancellation
	// deterministically).
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		t.Log("sweep finished before the cancel landed; nothing to resume")
		return
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	var v jobView
	getJSON(t, ts.URL+"/v1/runs/"+created.ID, http.StatusOK, &v)
	if v.Status != "cancelled" {
		t.Fatalf("DELETE left the sweep %q", v.Status)
	}

	// Resubmitting completes the grid; any cell that finished before the
	// cancellation is served from the registry, not recomputed.
	var again jobView
	postJSON(t, ts.URL+"/v1/runs", `{"experiment":"smoke","scale":"tiny","seed":7}`, http.StatusAccepted, &again)
	if again.ID == created.ID {
		t.Fatal("cancelled sweep did not give way to a resubmission")
	}
	done := awaitDone(t, ts.URL, again.ID)
	if done.Status != "done" {
		t.Fatalf("resumed sweep: %+v", done)
	}
	if done.Cached+done.Executed != done.Cells {
		t.Fatalf("resumed sweep cell accounting: %+v", done)
	}
}

// TestShutdownCancelsAndCheckpoints: cancelling the server's base
// context (the graceful-shutdown path) winds down in-flight training
// sessions with a resume checkpoint and a journalled cancelled status.
func TestShutdownCancelsAndCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a training session")
	}
	dir := t.TempDir()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	baseCtx, shutdown := context.WithCancel(context.Background())
	s := newServer(st, 2, baseCtx)
	ts := httptestServer(t, s)

	var created jobView
	postJSON(t, ts+"/v1/train", trainBody, http.StatusAccepted, &created)
	awaitSteps(t, ts, created.ID, 10)

	shutdown()
	s.drain()

	var v jobView
	getJSON(t, ts+"/v1/runs/"+created.ID, http.StatusOK, &v)
	if v.Status != "cancelled" {
		t.Fatalf("shutdown left run %q", v.Status)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "sessions", "*.ckpt"))
	if len(ckpts) != 1 {
		t.Fatalf("shutdown saved %d checkpoints", len(ckpts))
	}
}
