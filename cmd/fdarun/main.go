// Command fdarun executes a single distributed training run of one zoo
// model under one strategy and prints its communication / computation /
// accuracy summary.
//
// Examples:
//
//	fdarun -model lenet5s -strategy LinearFDA -theta 0.05 -k 10 -target 0.95
//	fdarun -model densenet121s -strategy Synchronous -k 5 -steps 300
//	fdarun -model vgg16s -strategy FedAdam -k 10 -target 0.96
//	fdarun -model lenet5s -strategy LinearFDA -theta 0.05 -het label0
//	fdarun -model lenet5s -strategy SketchFDA -theta 0.05 -async -speeds 1,1,1,0.5,0.25
//	fdarun -model lenet5s -strategy LinearFDA -progress        # live sync/eval events
//
// Runs execute as a cancellable session: Ctrl-C stops between steps and
// prints the partial summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"repro/fda"
	"repro/internal/buildinfo"
)

func main() {
	var (
		model    = flag.String("model", "lenet5s", "zoo model: lenet5s, vgg16s, densenet121s, densenet201s, convnexts")
		strategy = flag.String("strategy", "LinearFDA", "LinearFDA, SketchFDA, OracleFDA, Synchronous, LocalSGD, IncTau, DecTau, PostLocal, LAG, FedAvg, FedAvgM, FedAdam")
		theta    = flag.Float64("theta", 0, "variance threshold Θ (0 = second entry of the model's default grid)")
		tau      = flag.Int("tau", 10, "τ for LocalSGD/IncTau/DecTau/PostLocal/LAG")
		budget   = flag.Float64("budget", 0, "bytes/step bandwidth budget; wraps the FDA variant with the §5 adaptive-Θ controller")
		k        = flag.Int("k", 5, "number of workers K")
		batch    = flag.Int("batch", 32, "local mini-batch size")
		steps    = flag.Int("steps", 600, "maximum in-parallel steps")
		target   = flag.Float64("target", 0, "test-accuracy target (0 = run all steps)")
		het      = flag.String("het", "iid", "data split: iid, label<Y>, pct<X>, dir<alpha>")
		seed     = flag.Uint64("seed", 1, "run seed")
		topk     = flag.Float64("topk", 0, "compose top-k sync compression with the given keep fraction")
		qbits    = flag.Int("qbits", 0, "compose uniform quantization with the given bits per component")
		async    = flag.Bool("async", false, "run the asynchronous (coordinator) FDA variant")
		speeds   = flag.String("speeds", "", "comma-separated per-worker speeds for -async")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "goroutines for the worker/eval loops (1 = sequential; results are bit-identical; no effect with -async, whose coordinator runner is sequential)")
		progress = flag.Bool("progress", false, "print live sync/eval events while the run executes")
		version  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdarun"))
		return
	}

	spec, err := fda.ModelByName(*model)
	if err != nil {
		fatal(err)
	}
	train, test := fda.DatasetForModel(spec, *seed)
	th := *theta
	if th == 0 {
		th = spec.ThetaGrid[1]
	}

	cfg := fda.Config{
		K: *k, BatchSize: *batch, Seed: *seed,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		Het:            parseHet(*het),
		MaxSteps:       *steps,
		TargetAccuracy: *target,
		Parallelism:    *jobs,
	}
	switch {
	case *topk > 0 && *qbits > 0:
		cfg.SyncCodec = fda.Codec(chain{fda.TopK{Fraction: *topk}, fda.Quantize{Bits: *qbits}})
	case *topk > 0:
		cfg.SyncCodec = fda.TopK{Fraction: *topk}
	case *qbits > 0:
		cfg.SyncCodec = fda.Quantize{Bits: *qbits}
	}

	// Ctrl-C cancels the run between steps; the session machinery makes
	// that a clean stop with a partial summary instead of a hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *async {
		ac := fda.AsyncConfig{Config: cfg, Theta: th, UseSketch: *strategy == "SketchFDA"}
		if *speeds != "" {
			for _, part := range strings.Split(*speeds, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					fatal(fmt.Errorf("bad -speeds entry %q: %v", part, err))
				}
				ac.Speeds = append(ac.Speeds, v)
			}
		}
		res, err := fda.RunAsyncContext(ctx, ac, progressSink(*progress))
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		if err != nil {
			fmt.Println("cancelled; partial result:")
		}
		fmt.Println(res.Result)
		fmt.Printf("per-worker steps: %v  virtual time: %.1f\n", res.StepsPerWorker, res.VirtualTime)
		return
	}

	var strat fda.Strategy
	switch *strategy {
	case "LinearFDA":
		strat = fda.NewLinearFDA(th)
	case "SketchFDA":
		strat = fda.NewSketchFDA(th)
	case "OracleFDA":
		strat = fda.NewOracleFDA(th)
	case "Synchronous":
		strat = fda.NewSynchronous()
	case "LocalSGD":
		strat = fda.NewLocalSGD(*tau)
	case "IncTau":
		strat = fda.NewIncreasingTauLocalSGD(*tau, 2)
	case "DecTau":
		strat = fda.NewDecreasingTauLocalSGD(*tau, 2)
	case "PostLocal":
		strat = fda.NewPostLocalSGD(*steps/4, *tau)
	case "LAG":
		strat = fda.NewLAG(*tau, 0.5)
	case "FedAvg":
		strat = fda.NewFedAvgFor(cfg, 1)
	case "FedAvgM":
		strat = fda.NewFedAvgMFor(cfg, 1)
	case "FedAdam":
		strat = fda.NewFedAdamFor(cfg, 1)
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}
	if *budget > 0 {
		switch *strategy {
		case "LinearFDA", "SketchFDA":
			strat = fda.NewAdaptiveTheta(strat, *budget)
		default:
			fatal(fmt.Errorf("-budget only applies to LinearFDA/SketchFDA"))
		}
	}

	sess, err := fda.NewSession(ctx, cfg, strat)
	if err != nil {
		fatal(err)
	}
	if sink := progressSink(*progress); sink != nil {
		sess.Subscribe(sink)
	}
	res, err := sess.Run()
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	if err != nil {
		fmt.Printf("cancelled at step %d; partial result:\n", sess.StepCount())
	}
	fmt.Println(res)
	fmt.Println("history:")
	for _, p := range res.History {
		fmt.Printf("  step=%4d epoch=%5.1f acc=%.4f comm=%.4fGB syncs=%d\n",
			p.Step, p.Epoch, p.TestAcc, float64(p.CommBytes)/1e9, p.SyncCount)
	}
	for _, prof := range []fda.NetworkProfile{fda.ProfileFL, fda.ProfileBalanced, fda.ProfileHPC} {
		bits := float64(res.CommBytes) * 8
		fmt.Printf("est. comm time on %-9s %.2fs\n", prof.Name+":", bits/prof.BandwidthBps)
	}
}

// progressSink returns an event sink printing live sync/eval progress
// lines to stderr, or nil when -progress is off. Step events are
// skipped: at thousands of steps per run they would swamp the terminal
// without adding signal over the sync/eval cadence.
func progressSink(enabled bool) fda.EventSink {
	if !enabled {
		return nil
	}
	return func(e fda.Event) {
		switch ev := e.(type) {
		case fda.SyncEvent:
			fmt.Fprintf(os.Stderr, "[sync %3d] step=%4d trigger=%s bytes=%d total=%d\n",
				ev.SyncCount, ev.Step, ev.Trigger, ev.SyncBytes, ev.TotalBytes)
		case fda.EvalEvent:
			fmt.Fprintf(os.Stderr, "[eval] step=%4d epoch=%5.1f acc=%.4f comm=%.4fGB syncs=%d\n",
				ev.Point.Step, ev.Point.Epoch, ev.Point.TestAcc,
				float64(ev.Point.CommBytes)/1e9, ev.Point.SyncCount)
		case fda.DoneEvent:
			fmt.Fprintf(os.Stderr, "[done] %s\n", ev.Result.String())
		}
	}
}

// parseHet converts the -het flag (iid, labelY, pctX) to a scenario.
func parseHet(s string) fda.Heterogeneity {
	switch {
	case s == "" || s == "iid":
		return fda.IID()
	case strings.HasPrefix(s, "label"):
		y, err := strconv.Atoi(strings.TrimPrefix(s, "label"))
		if err != nil {
			fatal(fmt.Errorf("bad -het %q", s))
		}
		return fda.NonIIDLabel(y, 2)
	case strings.HasPrefix(s, "pct"):
		x, err := strconv.ParseFloat(strings.TrimPrefix(s, "pct"), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -het %q", s))
		}
		return fda.NonIIDPercent(x)
	case strings.HasPrefix(s, "dir"):
		a, err := strconv.ParseFloat(strings.TrimPrefix(s, "dir"), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -het %q", s))
		}
		return fda.NonIIDDirichlet(a)
	default:
		fatal(fmt.Errorf("unknown -het %q", s))
		return fda.IID()
	}
}

// chain is a two-stage codec for the -topk + -qbits combination.
type chain [2]fda.Codec

func (c chain) Name() string { return c[0].Name() + "+" + c[1].Name() }
func (c chain) Roundtrip(dst, v []float64) int {
	c[0].Roundtrip(dst, v)
	return c[1].Roundtrip(dst, dst)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdarun:", err)
	os.Exit(1)
}
