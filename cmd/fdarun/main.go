// Command fdarun executes a single distributed training run of one zoo
// model under one strategy and prints its communication / computation /
// accuracy summary.
//
// Examples:
//
//	fdarun -model lenet5s -strategy LinearFDA -theta 0.05 -k 10 -target 0.95
//	fdarun -model densenet121s -strategy Synchronous -k 5 -steps 300
//	fdarun -model vgg16s -strategy FedAdam -k 10 -target 0.96
//	fdarun -model lenet5s -strategy LinearFDA -theta 0.05 -het label0
//	fdarun -model lenet5s -strategy SketchFDA -theta 0.05 -async -speeds 1,1,1,0.5,0.25
//	fdarun -model lenet5s -strategy LinearFDA -progress        # live sync/eval events
//
// The run executes on a pluggable communication fabric:
//
//	fdarun -scenario fedwan ...                 # simulated heterogeneous network,
//	                                            # prints estimated time-to-accuracy
//	fdarun -coordinator :9000 -k 3 ...          # host a multi-process cluster and wait
//	                                            # for 3 workers, then train for real
//	fdarun -worker -connect host:9000           # join as one worker process (rank and
//	                                            # job spec come from the coordinator)
//
// Runs execute as a cancellable session: Ctrl-C stops between steps and
// prints the partial summary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"repro/fda"
	"repro/internal/buildinfo"
	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/runstore"
)

func main() {
	var (
		model    = flag.String("model", "lenet5s", "zoo model: lenet5s, vgg16s, densenet121s, densenet201s, convnexts")
		strategy = flag.String("strategy", "LinearFDA", "LinearFDA, SketchFDA, OracleFDA, Synchronous, LocalSGD, IncTau, DecTau, PostLocal, LAG, FedAvg, FedAvgM, FedAdam")
		theta    = flag.Float64("theta", 0, "variance threshold Θ (0 = second entry of the model's default grid)")
		tau      = flag.Int("tau", 10, "τ for LocalSGD/IncTau/DecTau/PostLocal/LAG")
		budget   = flag.Float64("budget", 0, "bytes/step bandwidth budget; wraps the FDA variant with the §5 adaptive-Θ controller")
		k        = flag.Int("k", 5, "number of workers K")
		batch    = flag.Int("batch", 32, "local mini-batch size")
		steps    = flag.Int("steps", 600, "maximum in-parallel steps")
		target   = flag.Float64("target", 0, "test-accuracy target (0 = run all steps)")
		het      = flag.String("het", "iid", "data split: iid, label<Y>, pct<X>, dir<alpha>")
		seed     = flag.Uint64("seed", 1, "run seed")
		topk     = flag.Float64("topk", 0, "compose top-k sync compression with the given keep fraction")
		qbits    = flag.Int("qbits", 0, "compose uniform quantization with the given bits per component")
		async    = flag.Bool("async", false, "run the asynchronous (coordinator) FDA variant")
		speeds   = flag.String("speeds", "", "comma-separated per-worker speeds for -async")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "goroutines for the worker/eval loops (1 = sequential; results are bit-identical; no effect with -async, whose coordinator runner is sequential)")
		progress = flag.Bool("progress", false, "print live sync/eval events while the run executes")
		scenario = flag.String("scenario", "", "run on the simulated-network fabric under a named scenario (lan, fedwan, straggler) and report estimated time-to-accuracy")
		worker   = flag.Bool("worker", false, "join a multi-process cluster as one worker (requires -connect; the coordinator supplies rank and job spec)")
		connect  = flag.String("connect", "", "coordinator address for -worker")
		coord    = flag.String("coordinator", "", "host a multi-process cluster on this address (e.g. :9000): wait for -k workers, drive the run, verify and print the result")
		storeDir = flag.String("store", "", "run-registry directory holding trajectory-prefix snapshots for -warmstart")
		warm     = flag.Bool("warmstart", false, "restore the longest stored trajectory prefix compatible with this run and publish new prefixes (needs -store; result is bit-identical to a cold run)")
		traceOut = flag.String("trace", "", "write a whole-run Chrome trace-event JSON (open in Perfetto) to this file and enable telemetry; results are bit-identical with or without it")
		version  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdarun"))
		return
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		obs.Enable()
		if err := obs.TraceTo(f); err != nil {
			fatal(err)
		}
		defer func() {
			if err := obs.StopTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "fdarun: writing trace: %v\n", err)
			}
		}()
	}

	// Worker mode: everything about the run comes from the coordinator.
	if *worker {
		if *connect == "" {
			fatal(errors.New("-worker requires -connect host:port"))
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, rank, err := dist.RunWorker(ctx, *connect, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("worker rank %d finished:\n%s\n", rank, res)
		return
	}

	// Coordinator mode: no local training — serialize the job spec from
	// the same flags, rendezvous -k worker processes, relay their
	// collectives and report the verified cluster result.
	if *coord != "" {
		// Refuse rather than silently drop flags the job spec cannot
		// carry to the workers.
		if *scenario != "" {
			fatal(errors.New("-scenario does not combine with -coordinator (the TCP fabric is the transport)"))
		}
		if *budget > 0 || *async {
			fatal(errors.New("-budget and -async are not available in -coordinator mode"))
		}
		jspec := dist.JobSpec{
			Model: *model, Strategy: *strategy, Theta: *theta, Tau: *tau,
			K: *k, Batch: *batch, Steps: *steps, Target: *target,
			Het: *het, Seed: *seed, TopK: *topk, QBits: *qbits,
		}
		co, err := comm.ListenCoordinator(*coord, *k)
		if err != nil {
			fatal(err)
		}
		defer co.Close()
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		fmt.Printf("coordinating %d workers on %s (start them with: fdarun -worker -connect <host>%s)\n",
			*k, co.Addr(), *coord)
		res, err := dist.Coordinate(ctx, co, jspec)
		if err != nil {
			fatal(err)
		}
		rounds, wire := co.Stats()
		fmt.Println(res)
		fmt.Printf("relay: %d collective rounds, %.3f MB framed payload moved\n",
			rounds, float64(wire)/1e6)
		return
	}

	spec, err := fda.ModelByName(*model)
	if err != nil {
		fatal(err)
	}
	train, test := fda.DatasetForModel(spec, *seed)
	th := *theta
	if th == 0 {
		th = spec.ThetaGrid[1]
	}

	cfg := fda.Config{
		K: *k, BatchSize: *batch, Seed: *seed,
		Model: spec.Build, Optimizer: spec.Optimizer,
		Train: train, Test: test,
		Het:            parseHet(*het),
		MaxSteps:       *steps,
		TargetAccuracy: *target,
		Parallelism:    *jobs,
	}
	switch {
	case *topk > 0 && *qbits > 0:
		cfg.SyncCodec = fda.Chain{Stages: []fda.Codec{fda.TopK{Fraction: *topk}, fda.Quantize{Bits: *qbits}}}
	case *topk > 0:
		cfg.SyncCodec = fda.TopK{Fraction: *topk}
	case *qbits > 0:
		cfg.SyncCodec = fda.Quantize{Bits: *qbits}
	}
	if *scenario != "" {
		scen, err := fda.ScenarioByName(*scenario)
		if err != nil {
			fatal(err)
		}
		cfg.Fabric = fda.NewSimFabric(cfg.K, fda.DefaultCostModel(), scen)
	}

	// Ctrl-C cancels the run between steps; the session machinery makes
	// that a clean stop with a partial summary instead of a hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *async {
		if *warm {
			fatal(errors.New("-warmstart applies to plain session runs only (not -async)"))
		}
		if *scenario != "" {
			// The async coordinator runner has its own speed/virtual-time
			// model and never reads cfg.Fabric; dropping the flag silently
			// would report times the scenario did not produce.
			fatal(errors.New("-scenario does not apply to -async (use -speeds for async heterogeneity)"))
		}
		ac := fda.AsyncConfig{Config: cfg, Theta: th, UseSketch: *strategy == "SketchFDA"}
		if *speeds != "" {
			for _, part := range strings.Split(*speeds, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil {
					fatal(fmt.Errorf("bad -speeds entry %q: %v", part, err))
				}
				ac.Speeds = append(ac.Speeds, v)
			}
		}
		res, err := fda.RunAsyncContext(ctx, ac, progressSink(*progress))
		if err != nil && !errors.Is(err, context.Canceled) {
			fatal(err)
		}
		if err != nil {
			fmt.Println("cancelled; partial result:")
		}
		fmt.Println(res.Result)
		fmt.Printf("per-worker steps: %v  virtual time: %.1f\n", res.StepsPerWorker, res.VirtualTime)
		return
	}

	strat, err := dist.StrategyFor(*strategy, th, *tau, cfg)
	if err != nil {
		fatal(err)
	}
	if *budget > 0 {
		switch *strategy {
		case "LinearFDA", "SketchFDA":
			strat = fda.NewAdaptiveTheta(strat, *budget)
		default:
			fatal(fmt.Errorf("-budget only applies to LinearFDA/SketchFDA"))
		}
	}

	sess, err := fda.NewSession(ctx, cfg, strat)
	if err != nil {
		fatal(err)
	}
	if sink := progressSink(*progress); sink != nil {
		sess.Subscribe(sink)
	}
	if *warm {
		if *storeDir == "" {
			fatal(errors.New("-warmstart requires -store"))
		}
		if *scenario != "" {
			fatal(errors.New("-warmstart does not combine with -scenario (virtual-clock state is outside prefix snapshots)"))
		}
		// The spec captures every trajectory- and stopping-determining
		// input, so prefix addresses can only collide between runs that
		// would replay the same silent steps (DESIGN.md §10). Sync-time
		// knobs (codecs, -jobs) are deliberately absent: that is the
		// sharing the prefix family machinery makes safe.
		var targets []float64
		if *target > 0 {
			targets = []float64{*target}
		}
		spec := runstore.Spec{
			Experiment: "fdarun",
			Seed:       *seed,
			Model:      *model,
			Strategy:   *strategy,
			Theta:      th,
			K:          *k,
			Het:        *het,
			Targets:    targets,
			Extra: map[string]string{
				"batch": strconv.Itoa(*batch),
				"steps": strconv.Itoa(*steps),
			},
		}
		if err := warmStart(sess, strat, cfg, *storeDir, spec); err != nil {
			fatal(err)
		}
	}
	res, err := sess.Run()
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
	if err != nil {
		fmt.Printf("cancelled at step %d; partial result:\n", sess.StepCount())
	}
	fmt.Println(res)
	fmt.Println("history:")
	for _, p := range res.History {
		fmt.Printf("  step=%4d epoch=%5.1f acc=%.4f comm=%.4fGB syncs=%d\n",
			p.Step, p.Epoch, p.TestAcc, float64(p.CommBytes)/1e9, p.SyncCount)
	}
	if res.VirtualSec > 0 {
		fmt.Printf("estimated wall-clock under scenario %q: %.2fs (compute + communication, virtual clock)\n",
			*scenario, res.VirtualSec)
		return
	}
	for _, prof := range []fda.NetworkProfile{fda.ProfileFL, fda.ProfileBalanced, fda.ProfileHPC} {
		bits := float64(res.CommBytes) * 8
		fmt.Printf("est. comm time on %-9s %.2fs\n", prof.Name+":", bits/prof.BandwidthBps)
	}
}

// progressSink returns an event sink printing live sync/eval progress
// lines to stderr, or nil when -progress is off. Step events are
// skipped: at thousands of steps per run they would swamp the terminal
// without adding signal over the sync/eval cadence.
func progressSink(enabled bool) fda.EventSink {
	if !enabled {
		return nil
	}
	return func(e fda.Event) {
		switch ev := e.(type) {
		case fda.SyncEvent:
			fmt.Fprintf(os.Stderr, "[sync %3d] step=%4d trigger=%s bytes=%d total=%d\n",
				ev.SyncCount, ev.Step, ev.Trigger, ev.SyncBytes, ev.TotalBytes)
		case fda.EvalEvent:
			fmt.Fprintf(os.Stderr, "[eval] step=%4d epoch=%5.1f acc=%.4f comm=%.4fGB syncs=%d\n",
				ev.Point.Step, ev.Point.Epoch, ev.Point.TestAcc,
				float64(ev.Point.CommBytes)/1e9, ev.Point.SyncCount)
		case fda.DoneEvent:
			fmt.Fprintf(os.Stderr, "[done] %s\n", ev.Result.String())
		}
	}
}

// parseHet converts the -het flag through the shared grammar
// (data.ParseHeterogeneity), fataling on a bad selector.
func parseHet(s string) fda.Heterogeneity {
	h, err := dist.ParseHet(s)
	if err != nil {
		fatal(err)
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdarun:", err)
	os.Exit(1)
}
