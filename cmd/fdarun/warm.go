package main

import (
	"fmt"
	"os"

	"repro/fda"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// warmStart wires one plain session run into the trajectory-prefix
// snapshot store (DESIGN.md §10): restore the longest stored prefix the
// strategy can prove it would have produced itself, then publish the
// run's own pre-first-sync prefixes for future invocations. The result
// is bit-identical to a cold run — warm starts change wall clock, never
// bytes. Store trouble costs reuse, not the run.
func warmStart(sess *fda.Session, strat fda.Strategy, cfg fda.Config, dir string, spec runstore.Spec) error {
	sharer, ok := strat.(core.PrefixSharer)
	if !ok {
		fmt.Fprintf(os.Stderr, "fdarun: %s does not share trajectory prefixes; -warmstart has no effect\n", strat.Name())
		return nil
	}
	st, err := runstore.Open(dir)
	if err != nil {
		return fmt.Errorf("opening store: %w", err)
	}
	prefix := spec.Prefix(sharer.PrefixFamily())

	// baseGuard carries the restored manifest's guard into republished
	// prefixes: the session never re-observes the restored steps'
	// statistics, so its own running maximum restarts low.
	var baseGuard float64
	rsp := obs.StartRegion("warmstart.restore", "runstore")
	blob, m, found, err := st.BestSnapshot(prefix, cfg.MaxSteps, sharer.AcceptPrefix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdarun: snapshot store: %v\n", err)
	}
	if found {
		snap, err := checkpoint.Unmarshal(blob)
		if err == nil {
			err = sess.Restore(snap)
		}
		if err != nil {
			return fmt.Errorf("restoring prefix %s@%d: %w", m.Hash, m.Steps, err)
		}
		baseGuard = m.Guard
		fmt.Printf("warmstart: restored %d steps from prefix snapshot %s\n", m.Steps, m.Hash[:12])
	}
	if rsp.Active() {
		rsp.EndArgs("restored_steps", m.Steps, "hit", found)
	}

	every := cfg.EvalEvery
	if every <= 0 {
		every = 20 // the session's own EvalEvery default (core config)
	}
	return sess.PublishPrefixes(every, func(steps int, snap *checkpoint.Snapshot) {
		guard := sharer.PrefixGuard()
		if baseGuard > guard {
			guard = baseGuard
		}
		blob, err := checkpoint.Marshal(snap)
		if err == nil {
			err = st.PutSnapshot(prefix, steps, guard, blob)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdarun: snapshot publish: %v\n", err)
		}
	})
}
