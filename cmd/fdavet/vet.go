// The go vet unit-checker protocol: when driven by
// `go vet -vettool=fdavet`, the go command invokes the tool once per
// package with a JSON config file describing the unit — source files,
// the import map, and compiled export data for every dependency. The
// tool type-checks the unit against that export data (no network, no
// re-resolution), runs the suite, writes an (empty) facts file, and
// exits 2 when it found anything.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the fields of the go command's vet config file
// that fdavet consumes (the file carries more; unknown keys are
// ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one go vet unit; its return value is the process
// exit status.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "fdavet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// fdavet exports no facts, but the protocol requires the file.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "fdavet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants govern shipped code; test files (and the test
	// variants go vet also feeds through) are the dynamic layer's
	// domain. External test units filter down to zero files.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i] // "pkg [pkg.test]" variant
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("fdavet: no export data for %q in vet config", path)
		}
		return os.Open(file)
	}
	pkg := lint.CheckDir(fset, cfg.Dir, importPath, files, lint.GcImporter(fset, lookup))
	if pkg.Err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "fdavet: %s: %v\n", importPath, pkg.Err)
		return 1
	}
	diags, err := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
