// Command fdavet is the repository's invariant checker: five custom
// analyzers (detmap, wallclock, floatsum, obswrite, noalloc) that turn
// the determinism, zero-allocation and telemetry-non-interference
// contracts into compiler-adjacent checks running on every package
// (DESIGN.md §12).
//
// Standalone:
//
//	fdavet ./...            # analyze packages, human-readable findings
//	fdavet -json ./...      # machine-readable findings (CI annotations)
//
// As a go vet tool (one package per invocation, driven by the go
// command's build graph):
//
//	go vet -vettool=$(which fdavet) ./...
//
// Exit status: 0 clean, 1 infrastructure failure, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// go vet protocol handshakes arrive before normal flag parsing.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// Tool identity for the go command's action cache.
			fmt.Printf("fdavet version v8\n")
			return
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags are exposed through go vet.
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(vetUnit(arg))
		}
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: fdavet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := lint.Run(pkgs, lint.Analyzers())
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s\n", d)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// finding is the -json wire shape: one diagnostic, stable field names.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []lint.Diagnostic) error {
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fdavet: %v\n", err)
	os.Exit(1)
}
