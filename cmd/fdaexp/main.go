// Command fdaexp regenerates the paper's tables and figures on the scaled
// workloads. Each experiment prints the data rows/series behind the
// corresponding table or figure (see DESIGN.md §4 for the index).
//
// Examples:
//
//	fdaexp -exp table2
//	fdaexp -exp fig3
//	fdaexp -exp all -scale quick
//	fdaexp -exp fig12 -scale full      # paper-like grids; hours of CPU
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "table2, fig3 … fig13, or all")
		scale = flag.String("scale", "quick", "tiny, quick or full")
		seed  = flag.Uint64("seed", 1, "experiment seed")
		jobs  = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep cells (1 = sequential; output is identical at any setting)")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "tiny":
		sc = experiments.Tiny
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "fdaexp: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	o := experiments.Options{Scale: sc, Seed: *seed, Out: os.Stdout, Jobs: *jobs}

	runners := map[string]func(experiments.Options){
		"table2": func(o experiments.Options) { experiments.Table2(o) },
		"fig3":   func(o experiments.Options) { experiments.Figure3(o) },
		"fig4":   func(o experiments.Options) { experiments.Figure4(o) },
		"fig5":   func(o experiments.Options) { experiments.Figure5(o) },
		"fig6":   func(o experiments.Options) { experiments.Figure6(o) },
		"fig7":   func(o experiments.Options) { experiments.Figure7(o) },
		"fig8":   func(o experiments.Options) { experiments.Figure8(o) },
		"fig9":   func(o experiments.Options) { experiments.Figure9(o) },
		"fig10":  func(o experiments.Options) { experiments.Figure10(o) },
		"fig11":  func(o experiments.Options) { experiments.Figure11(o) },
		"fig12":  func(o experiments.Options) { experiments.Figure12(o) },
		"fig13":  func(o experiments.Options) { experiments.Figure13(o) },
	}
	order := []string{"table2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}

	if *exp == "all" {
		for _, name := range order {
			start := time.Now()
			runners[name](o)
			fmt.Printf("[%s done in %.0fs]\n", name, time.Since(start).Seconds())
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "fdaexp: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
	run(o)
}
