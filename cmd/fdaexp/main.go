// Command fdaexp regenerates the paper's tables and figures on the scaled
// workloads. Each experiment prints the data rows/series behind the
// corresponding table or figure (see DESIGN.md §4 for the index).
//
// With -store, results are cached in a content-addressed run registry
// (DESIGN.md §6): every grid cell that was already computed — by a
// previous invocation, an interrupted sweep, or fdaserve — loads from
// disk, and only the missing cells execute. Output is byte-identical
// either way.
//
// Examples:
//
//	fdaexp -exp table2
//	fdaexp -exp fig3
//	fdaexp -exp all -scale quick
//	fdaexp -exp fig12 -scale full        # paper-like grids; hours of CPU
//	fdaexp -exp all -store runs.d        # populate the run registry
//	fdaexp -exp all -resume              # pick up where a killed sweep stopped
//	fdaexp -exp thetasweep -store runs.d -warmstart  # share trajectory prefixes across Θ cells
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runstore"
)

// defaultStoreDir is where -resume caches runs when -store is not given.
const defaultStoreDir = "fdaexp-store"

func main() {
	var (
		exp      = flag.String("exp", "all", "table2, fig3 … fig13, smoke, netsweep, or all (= the paper artifacts)")
		scale    = flag.String("scale", "quick", "tiny, quick or full")
		seed     = flag.Uint64("seed", 1, "experiment seed")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep cells (1 = sequential; output is identical at any setting)")
		storeDir = flag.String("store", "", "run-registry directory: cache every grid cell's records there and reuse cached cells")
		resume   = flag.Bool("resume", false, "resume from the run registry (implies -store "+defaultStoreDir+" when -store is not set)")
		warm     = flag.Bool("warmstart", false, "reuse trajectory-prefix snapshots across grid cells sharing a trajectory (needs -store; bit-identical output, lower wall clock)")
		progress = flag.Bool("progress", false, "print one line per grid cell as the sweep executes")
		traceOut = flag.String("trace", "", "write a whole-sweep Chrome trace-event JSON (open in Perfetto) to this file and enable telemetry; output is byte-identical with or without it")
		version  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdaexp"))
		return
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdaexp: %v\n", err)
			os.Exit(1)
		}
		obs.Enable()
		if err := obs.TraceTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "fdaexp: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := obs.StopTrace(); err != nil {
				fmt.Fprintf(os.Stderr, "fdaexp: writing trace: %v\n", err)
			}
		}()
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fdaexp: unknown scale %q\n", *scale)
		os.Exit(1)
	}
	// Ctrl-C cancels the sweep between grid cells; with -store, the cells
	// that completed are persisted, so rerunning with -resume picks up
	// exactly where the cancellation landed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := experiments.Options{Scale: sc, Seed: *seed, Out: os.Stdout, Jobs: *jobs, Ctx: ctx}
	if *progress {
		var mu sync.Mutex
		o.Events = func(ce experiments.CellEvent) {
			mu.Lock()
			defer mu.Unlock()
			src := "ran"
			if ce.Cached {
				src = "cached"
			}
			fmt.Fprintf(os.Stderr, "[cell %d/%d %s] %s %s K=%d theta=%g\n",
				ce.Index+1, ce.Total, src, ce.Spec.Model, ce.Spec.Strategy, ce.Spec.K, ce.Spec.Theta)
		}
	}

	if *resume && *storeDir == "" {
		*storeDir = defaultStoreDir
	}
	if *storeDir != "" {
		st, err := runstore.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fdaexp: opening store: %v\n", err)
			os.Exit(1)
		}
		o.Store = st
		o.Stats = &experiments.SweepStats{}
		o.Warm = *warm
	} else if *warm {
		fmt.Fprintln(os.Stderr, "fdaexp: -warmstart needs -store (or -resume); ignoring")
	}

	names := experiments.PaperNames()
	if *exp != "all" {
		if _, ok := experiments.Lookup(*exp); !ok {
			fmt.Fprintf(os.Stderr, "fdaexp: unknown experiment %q (have %s)\n",
				*exp, strings.Join(experiments.Names(), ", "))
			os.Exit(1)
		}
		names = []string{*exp}
	}

	for _, name := range names {
		start := time.Now()
		if _, err := experiments.Run(name, o); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "fdaexp: %s cancelled", name)
				if o.Store != nil {
					fmt.Fprintf(os.Stderr, "; completed cells are in %s (rerun with -resume)", *storeDir)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "fdaexp: %v\n", err)
			os.Exit(1)
		}
		if *exp == "all" {
			fmt.Printf("[%s done in %.0fs]\n", name, time.Since(start).Seconds())
		}
	}
	if o.Stats != nil {
		fmt.Printf("[store %s: %d cells, %d cached, %d executed]\n",
			*storeDir, o.Stats.Cells.Load(), o.Stats.Cached.Load(), o.Stats.Executed.Load())
		if o.Warm {
			fmt.Printf("[warmstart: %d snapshot hits, %d steps saved]\n",
				o.Stats.SnapshotHits.Load(), o.Stats.StepsSaved.Load())
		}
	}
}
