// Command fdaload drives shaped, deterministic load against a running
// fdaserve (DESIGN.md §13): it expands a declarative workload spec —
// arrival process × job mix × duration × seed — into a bit-identical
// request schedule, executes it open-loop with bounded in-flight
// concurrency, and emits a JSON report with per-kind latency
// percentiles, throughput, error and rejection counts in the benchjson
// report shape. It can also replay a trace recorded by
// `fdaserve -record` and step the arrival rate to locate the
// saturation knee.
//
//	# 10s of Poisson traffic at 50 req/s: 1 train per 4 status polls per 1 catalog read
//	fdaload -addr http://localhost:8080 -rate 50 -duration 10s \
//	        -mix train=1,status=4,store=1 -model lenet5s -strategy LinearFDA \
//	        -steps 50 -out report.json
//
//	# full spec file (arrival/mix grammar in DESIGN.md §13)
//	fdaload -addr http://localhost:8080 -spec workload.json -out report.json
//
//	# replay a recorded trace bit-identically
//	fdaload -addr http://localhost:8080 -replay trace.jsonl -out report.json
//
//	# step 10→160 req/s to find the saturation knee
//	fdaload -addr http://localhost:8080 -ramp 10,20,40,80,160 -duration 5s \
//	        -mix train=1,status=4 -model lenet5s -steps 20 -out ramp.json
//
// The schedule (arrival offsets, kinds, payload bytes) is a pure
// function of spec+seed; -export writes it as a tracev1 file without
// touching the server, which is how the schedule-parity tests pin
// bit-identical generation.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "base URL(s) of the server under load; comma-separated to spread directly across replicas (submissions round-robin, polls follow the submitting replica)")
		specFile = flag.String("spec", "", "workload spec file (JSON); overrides the inline spec flags")
		replay   = flag.String("replay", "", "replay a recorded tracev1 file instead of generating a schedule")
		export   = flag.String("export", "", "write the generated schedule as a tracev1 file and exit (no server needed)")

		arrival  = flag.String("arrival", "poisson", "arrival process: poisson, bursty, diurnal")
		rate     = flag.Float64("rate", 20, "mean arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "schedule duration (per ramp level in -ramp mode)")
		mixFlag  = flag.String("mix", "train=1,status=3,store=1", "job mix as kind=weight pairs (kinds: train, sweep, status, records, store, cancel)")
		onSec    = flag.Float64("on", 1, "bursty: burst length, seconds")
		offSec   = flag.Float64("off", 1, "bursty: silence length, seconds")
		period   = flag.Float64("period", 10, "diurnal: period length, seconds")
		weights  = flag.String("weights", "1,4,1", "diurnal: comma-separated per-window rate multipliers over one period")
		seed     = flag.Uint64("seed", 1, "schedule seed (same spec+seed ⇒ bit-identical schedule)")

		model     = flag.String("model", "lenet5s", "train cohort: zoo model")
		strategy  = flag.String("strategy", "LinearFDA", "train cohort: synchronization strategy")
		steps     = flag.Int("steps", 50, "train cohort: steps per job")
		k         = flag.Int("k", 2, "train cohort: simulated workers per job")
		batch     = flag.Int("batch", 8, "train cohort: batch size")
		evalEvery = flag.Int("eval-every", 0, "train cohort: evaluation cadence (0 = server default)")
		expName   = flag.String("experiment", "fig3", "sweep cohort: experiment name")
		scale     = flag.String("scale", "tiny", "sweep cohort: experiment scale")

		inflight    = flag.Int("inflight", 4096, "max concurrent in-flight requests (open loop; stalls are counted, not hidden)")
		rampFlag    = flag.String("ramp", "", "comma-separated offered rates; run -duration at each and locate the saturation knee")
		out         = flag.String("out", "", "write the JSON report here (default: stdout)")
		check       = flag.Bool("check", false, "exit non-zero unless the run completed work (ok > 0) with zero unexpected errors")
		maxRejected = flag.Float64("max-rejected", 1, "-check: maximum tolerated rejection rate (rejected/issued, 0..1); 1 allows any amount of shed load")
		version     = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdaload"))
		return
	}

	stop := make(chan struct{})
	go func() {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
		close(stop)
	}()

	var rep workload.Report
	switch {
	case *replay != "":
		reqs, src, err := loadTrace(*replay)
		if err != nil {
			fatal(err)
		}
		stats := run(reqs, *addr, *inflight, 0, stop)
		rep = workload.BuildReport(nil, stats, nil)
		rep.Trace = src
	default:
		spec, err := buildSpec(specArgs{
			specFile: *specFile, arrival: *arrival, rate: *rate, duration: *duration,
			mix: *mixFlag, on: *onSec, off: *offSec, period: *period, weights: *weights,
			seed: *seed, model: *model, strategy: *strategy, steps: *steps, k: *k,
			batch: *batch, evalEvery: *evalEvery, experiment: *expName, scale: *scale,
		})
		if err != nil {
			fatal(err)
		}
		if *export != "" {
			if err := exportSchedule(spec, *export); err != nil {
				fatal(err)
			}
			fmt.Printf("fdaload: wrote schedule %s\n", *export)
			return
		}
		if *rampFlag != "" {
			levels, err := parseRates(*rampFlag)
			if err != nil {
				fatal(err)
			}
			var ramp []workload.RampLevel
			for i, r := range levels {
				lv := rampLevelSpec(spec, i)
				lv.Arrival.Rate = r
				reqs, err := lv.Schedule()
				if err != nil {
					fatal(err)
				}
				fmt.Fprintf(os.Stderr, "fdaload: ramp level %d/%d: %g req/s for %gs (%d requests)\n",
					i+1, len(levels), r, lv.DurationSec, len(reqs))
				stats := run(reqs, *addr, *inflight, int64(lv.DurationSec*1e9), stop)
				ramp = append(ramp, workload.NewRampLevel(r, stats))
				if stoppedNow(stop) {
					break
				}
			}
			last := workload.RunStats{}
			if len(ramp) > 0 {
				last = ramp[len(ramp)-1].Stats
			}
			rep = workload.BuildReport(&spec, last, ramp)
		} else {
			reqs, err := spec.Schedule()
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "fdaload: %d requests over %gs against %s\n", len(reqs), spec.DurationSec, *addr)
			stats := run(reqs, *addr, *inflight, int64(spec.DurationSec*1e9), stop)
			rep = workload.BuildReport(&spec, stats, nil)
		}
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
	summarize(os.Stderr, rep)

	if *check {
		if err := checkReport(rep, *maxRejected); err != nil {
			fmt.Fprintf(os.Stderr, "fdaload: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "fdaload: check ok")
	}
}

// run executes one schedule against the server(s).
func run(reqs []workload.Request, addr string, inflight int, durationNS int64, stop <-chan struct{}) workload.RunStats {
	target := newHTTPTarget(addr)
	return workload.Run(reqs, target, workload.RunOptions{
		Clock:       newRealClock(),
		MaxInFlight: inflight,
		Stop:        stop,
		DurationNS:  durationNS,
	})
}

// rampLevelSpec derives level i's spec: a fresh schedule seed AND fresh
// cohort seed bases. The templates are deep-copied — they are shared
// pointers inside Mix — and their seed bases shifted far apart per
// level, so every level submits brand-new specs instead of re-hitting
// the previous level's dedupe keys (which would measure cache lookups,
// not admission throughput). Still a pure function of (spec, i):
// ramp runs stay deterministic.
func rampLevelSpec(spec workload.Spec, i int) workload.Spec {
	lv := spec
	lv.Seed = spec.Seed + uint64(i)
	lv.Mix = make([]workload.MixEntry, len(spec.Mix))
	for m, e := range spec.Mix {
		if e.Train != nil {
			t := *e.Train
			t.SeedBase += uint64(i) << 32
			e.Train = &t
		}
		if e.Sweep != nil {
			sw := *e.Sweep
			sw.SeedBase += uint64(i) << 32
			e.Sweep = &sw
		}
		lv.Mix[m] = e
	}
	return lv
}

func stoppedNow(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// specArgs carries the inline-flag spec configuration.
type specArgs struct {
	specFile, arrival, mix, weights    string
	model, strategy, experiment, scale string
	rate, on, off, period              float64
	duration                           time.Duration
	seed                               uint64
	steps, k, batch, evalEvery         int
}

// buildSpec resolves the workload spec: a spec file verbatim, or the
// inline flags assembled into one.
func buildSpec(a specArgs) (workload.Spec, error) {
	if a.specFile != "" {
		b, err := os.ReadFile(a.specFile)
		if err != nil {
			return workload.Spec{}, err
		}
		var spec workload.Spec
		if err := json.Unmarshal(b, &spec); err != nil {
			return workload.Spec{}, fmt.Errorf("parsing %s: %w", a.specFile, err)
		}
		return spec, spec.Validate()
	}
	ws, err := parseRates(a.weights)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("parsing -weights: %w", err)
	}
	spec := workload.Spec{
		Arrival: workload.Arrival{
			Process: a.arrival, Rate: a.rate,
			OnSec: a.on, OffSec: a.off,
			PeriodSec: a.period, Weights: ws,
		},
		DurationSec: a.duration.Seconds(),
		Seed:        a.seed,
	}
	if a.arrival != "bursty" {
		spec.Arrival.OnSec, spec.Arrival.OffSec = 0, 0
	}
	if a.arrival != "diurnal" {
		spec.Arrival.PeriodSec, spec.Arrival.Weights = 0, nil
	}
	train := &workload.TrainTemplate{
		Model: a.model, Strategy: a.strategy, Steps: a.steps,
		K: a.k, Batch: a.batch, EvalEvery: a.evalEvery, SeedBase: a.seed,
	}
	sweep := &workload.SweepTemplate{Experiment: a.experiment, Scale: a.scale, SeedBase: a.seed}
	for _, part := range strings.Split(a.mix, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return workload.Spec{}, fmt.Errorf("bad -mix entry %q (want kind=weight)", part)
		}
		w, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return workload.Spec{}, fmt.Errorf("bad -mix weight in %q: %w", part, err)
		}
		e := workload.MixEntry{Kind: workload.Kind(kv[0]), Weight: w}
		switch e.Kind {
		case workload.KindTrain:
			e.Train = train
		case workload.KindSweep:
			e.Sweep = sweep
		}
		spec.Mix = append(spec.Mix, e)
	}
	return spec, spec.Validate()
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func loadTrace(path string) ([]workload.Request, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	hdr, reqs, err := workload.ReadTrace(f)
	if err != nil {
		return nil, "", err
	}
	src := path
	if hdr.Source != "" {
		src = path + " (" + hdr.Source + ")"
	}
	return reqs, src, nil
}

func exportSchedule(spec workload.Spec, path string) error {
	reqs, err := spec.Schedule()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	hdr := workload.TraceHeader{Source: "fdaload", CreatedUnix: time.Now().Unix()}
	if err := workload.WriteTrace(f, hdr, reqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkReport implements -check: the smoke gate used by CI. Beyond the
// original zero-errors/nonzero-throughput gate, maxRejected bounds the
// rejection rate (rejected/issued) so a cluster gate can insist on
// graceful degradation — some shed load is expected at saturation, a
// cluster rejecting most of its traffic is not "sustaining" anything.
func checkReport(rep workload.Report, maxRejected float64) error {
	errs := rep.Load.Errors
	ok := rep.Load.OK
	rejected, issued := rep.Load.Rejected, rep.Load.Issued
	for _, l := range rep.Ramp {
		errs += l.Stats.Errors
		ok += l.Stats.OK
		rejected += l.Stats.Rejected
		issued += l.Stats.Issued
	}
	// The single-run report already folds its own totals; ramp levels
	// are distinct runs and accumulate (Load repeats the last level, so
	// subtract it once to avoid double counting).
	if n := len(rep.Ramp); n > 0 {
		errs -= rep.Ramp[n-1].Stats.Errors
		ok -= rep.Ramp[n-1].Stats.OK
		rejected -= rep.Ramp[n-1].Stats.Rejected
		issued -= rep.Ramp[n-1].Stats.Issued
	}
	if errs != 0 {
		return fmt.Errorf("%d unexpected errors", errs)
	}
	if ok == 0 {
		return fmt.Errorf("no request completed successfully (throughput is zero)")
	}
	if issued > 0 && maxRejected < 1 {
		if rate := float64(rejected) / float64(issued); rate > maxRejected {
			return fmt.Errorf("rejection rate %.3f exceeds -max-rejected %.3f (%d of %d requests shed)",
				rate, maxRejected, rejected, issued)
		}
	}
	return nil
}

func summarize(w io.Writer, rep workload.Report) {
	s := rep.Load
	fmt.Fprintf(w, "fdaload: %d issued, %d ok, %d rejected, %d conflicts, %d errors in %.2fs (%.1f req/s achieved, max %d in flight)\n",
		s.Issued, s.OK, s.Rejected, s.Conflicts, s.Errors, s.DurationSec, s.AchievedRPS, s.MaxInFlight)
	for _, ks := range s.Kinds {
		fmt.Fprintf(w, "fdaload:   %-8s %5d ok  p50 %8.2fms  p95 %8.2fms  p99 %8.2fms\n",
			ks.Kind, ks.OK, ks.P50Ms, ks.P95Ms, ks.P99Ms)
	}
	if len(rep.Ramp) > 0 {
		for _, l := range rep.Ramp {
			fmt.Fprintf(w, "fdaload: ramp %7.1f req/s offered -> %7.1f achieved, p99(train) %.2fms, %d rejected (%.1f%%), %d errors\n",
				l.OfferedRPS, l.Stats.AchievedRPS, kindP99(l.Stats, workload.KindTrain), l.Stats.Rejected, 100*l.RejectionRate, l.Stats.Errors)
		}
		if rep.SaturationRPS > 0 {
			fmt.Fprintf(w, "fdaload: saturation knee at %.1f req/s offered\n", rep.SaturationRPS)
		} else {
			fmt.Fprintln(w, "fdaload: no level sustained its offered rate (knee below the first rung)")
		}
	}
}

func kindP99(s workload.RunStats, k workload.Kind) float64 {
	for _, ks := range s.Kinds {
		if ks.Kind == k {
			return ks.P99Ms
		}
	}
	return 0
}

// realClock is the wall-clock implementation of workload.Clock: a
// monotonic nanosecond offset from construction.
type realClock struct {
	epoch time.Time
}

func newRealClock() *realClock { return &realClock{epoch: time.Now()} }

func (c *realClock) Now() int64 { return int64(time.Since(c.epoch)) }

func (c *realClock) WaitUntil(ns int64, stop <-chan struct{}) {
	d := time.Duration(ns - c.Now())
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// httpTarget executes requests against the fdaserve (or fdagate) API,
// tracking the job ids its submissions create so poll kinds have real
// targets. With multiple bases (-addr a,b,c) submissions round-robin
// across them and each id remembers its submitting base — replica job
// ids are replica-local, so polls must follow the replica that issued
// them (the gateway namespaces ids itself, so a single gateway base
// needs none of this).
type httpTarget struct {
	bases  []string
	client *http.Client

	mu     sync.Mutex
	ids    []string          // submitted job ids, in creation order
	idBase map[string]string // id -> submitting base URL
	cursor atomic.Uint64
	subSeq atomic.Uint64 // round-robin over bases for submissions
}

func newHTTPTarget(base string) *httpTarget {
	tr := &http.Transport{
		MaxIdleConns:        1 << 14,
		MaxIdleConnsPerHost: 1 << 14,
	}
	var bases []string
	for _, b := range strings.Split(base, ",") {
		if b = strings.TrimRight(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	return &httpTarget{
		bases:  bases,
		idBase: map[string]string{},
		client: &http.Client{Transport: tr, Timeout: 5 * time.Minute},
	}
}

// pickID returns a submitted job id round-robin with the base that owns
// it, or "" when none is known yet (early polls fall back to collection
// endpoints).
func (t *httpTarget) pickID() (id, base string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ids) == 0 {
		return "", ""
	}
	id = t.ids[int(t.cursor.Add(1))%len(t.ids)]
	return id, t.idBase[id]
}

func (t *httpTarget) addID(id, base string) {
	if id == "" {
		return
	}
	t.mu.Lock()
	if _, dup := t.idBase[id]; !dup {
		t.ids = append(t.ids, id)
		t.idBase[id] = base
	}
	t.mu.Unlock()
}

// submitBase picks the next base for a submission (round-robin).
func (t *httpTarget) submitBase() string {
	if len(t.bases) == 1 {
		return t.bases[0]
	}
	return t.bases[int(t.subSeq.Add(1))%len(t.bases)]
}

func (t *httpTarget) Do(req workload.Request) workload.Outcome {
	method, path, base := t.resolve(req)
	var body io.Reader
	if method == http.MethodPost && len(req.Body) > 0 {
		body = bytes.NewReader(req.Body)
	}
	hr, err := http.NewRequest(method, base+path, body)
	if err != nil {
		return workload.Outcome{Err: err}
	}
	if body != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(hr)
	if err != nil {
		return workload.Outcome{Err: err}
	}
	defer resp.Body.Close()
	if method == http.MethodPost && resp.StatusCode < 300 {
		var v struct {
			ID string `json:"id"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&v) == nil {
			t.addID(v.ID, base)
		}
	}
	// Drain so the transport can reuse the connection.
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<22))
	return workload.Outcome{Status: resp.StatusCode}
}

// resolve maps a request to its method, URL path and base URL. Recorded
// traces carry explicit paths; generated schedules resolve poll targets
// against the ids this client has created, on the base that created
// them.
func (t *httpTarget) resolve(req workload.Request) (method, path, base string) {
	if req.Path != "" {
		switch req.Kind {
		case workload.KindTrain, workload.KindSweep:
			return http.MethodPost, req.Path, t.submitBase()
		case workload.KindCancel:
			return http.MethodDelete, req.Path, t.submitBase()
		default:
			return http.MethodGet, req.Path, t.submitBase()
		}
	}
	switch req.Kind {
	case workload.KindTrain:
		return http.MethodPost, "/v1/train", t.submitBase()
	case workload.KindSweep:
		return http.MethodPost, "/v1/runs", t.submitBase()
	case workload.KindStatus:
		if id, b := t.pickID(); id != "" {
			return http.MethodGet, "/v1/runs/" + id, b
		}
		return http.MethodGet, "/v1/runs", t.submitBase()
	case workload.KindRecords:
		if id, b := t.pickID(); id != "" {
			return http.MethodGet, "/v1/runs/" + id + "/records", b
		}
		return http.MethodGet, "/v1/store", t.submitBase()
	case workload.KindCancel:
		if id, b := t.pickID(); id != "" {
			return http.MethodDelete, "/v1/runs/" + id, b
		}
		return http.MethodGet, "/v1/runs", t.submitBase()
	default:
		return http.MethodGet, "/v1/store", t.submitBase()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdaload:", err)
	os.Exit(1)
}
