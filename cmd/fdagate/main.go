// Command fdagate is the scale-out front-end for fdaserve (DESIGN.md
// §14): it proxies the full v1 API across N replicas sharing one
// content-addressed runstore. Train and sweep submissions are routed by
// cache affinity — the spec's canonical dedupe key, SHA-256'd exactly
// like the replicas themselves address it, rendezvous-hashed over the
// replica set — so a resubmitted spec lands on the replica that already
// owns the job no matter when or where it was first run. Everything the
// affinity tier can't place (cold specs whose owner is quarantined,
// draining or inside an overload window) falls back to the replica with
// the shallowest queue, and a bounded admission gate in front means the
// cluster degrades with 503 + Retry-After, never with timeouts.
//
//	# three replicas on one shared store
//	fdaserve -store runs.d -addr :8081 -name r1 -max-queue 64 &
//	fdaserve -store runs.d -addr :8082 -name r2 -max-queue 64 &
//	fdaserve -store runs.d -addr :8083 -name r3 -max-queue 64 &
//	fdagate -addr :8070 -replicas http://localhost:8081,http://localhost:8082,http://localhost:8083
//
//	curl -s localhost:8070/v1/cluster       # replica health/load table
//	curl -s -X POST localhost:8070/v1/train -d '{"model":"lenet5s","strategy":"LinearFDA"}'
//	curl -s localhost:8070/v1/runs/<id>     # id embeds the owning replica
//
// Job ids are namespaced "<replica-prefix>-<id>" (the prefix is derived
// from the replica URL), so id-scoped requests route statelessly and
// the gateway survives restarts without a job table.
//
// With -analyze, fdagate is instead the cluster saturation analyzer: it
// folds per-cluster-size `fdaload -ramp` reports into one
// benchjson-compatible capacity report (the BENCH_PR10.json series):
//
//	fdagate -analyze 1=ramp1.json,2=ramp2.json,4=ramp4.json:m1.json:m2.json -out capacity.json
//
// Each series is "N=rampreport.json" with optional colon-separated
// replica /v1/metrics snapshots appended for queue-wait percentiles.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	var (
		addr       = flag.String("addr", ":8070", "gateway listen address")
		replicas   = flag.String("replicas", "", "comma-separated replica base URLs (required unless -analyze)")
		poll       = flag.Duration("poll", 1*time.Second, "replica health/load poll interval")
		maxPending = flag.Int("max-pending", 1024, "bound on concurrently proxied submissions; beyond it the gateway answers 503 immediately")
		analyze    = flag.String("analyze", "", "run the saturation analyzer instead of serving: comma-separated N=rampreport.json[:metrics.json...] series")
		out        = flag.String("out", "", "-analyze: write the capacity report here (default: stdout)")
		version    = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("fdagate"))
		return
	}
	if *analyze != "" {
		if err := runAnalyze(*analyze, *out); err != nil {
			fatal(err)
		}
		return
	}

	bases := splitList(*replicas)
	if len(bases) == 0 {
		fatal(errors.New("at least one -replicas base URL is required (or use -analyze)"))
	}

	// The gateway always runs with telemetry on, like fdaserve: the
	// per-replica gauges and routing counters are its operational
	// surface.
	obs.Enable()

	// The cluster package is inside the deterministic-lint scope, so it
	// never touches the ambient clock; the gateway injects one (the same
	// epoch-offset idiom as fdaload's realClock).
	epoch := time.Now()
	now := func() int64 { return int64(time.Since(epoch)) }

	pool, err := cluster.NewPool(bases, cluster.Options{
		Client: &http.Client{Timeout: 5 * time.Second},
		Now:    now,
	})
	if err != nil {
		fatal(err)
	}
	gw := cluster.NewGateway(pool, cluster.GatewayOptions{
		Now:        now,
		MaxPending: *maxPending,
		Version:    buildinfo.String("fdagate"),
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// First poll before accepting traffic, so the initial routing acts
	// on observed health instead of pure optimism; then the background
	// poll loop keeps load fresh and probes quarantined replicas for
	// rejoin.
	pool.Poll(ctx)
	go func() {
		t := time.NewTicker(*poll)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				pool.Poll(ctx)
			}
		}
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("fdagate: listening on %s, %d replica(s)\n", *addr, len(bases))
	for _, v := range pool.Views() {
		state := "up"
		if !v.Healthy {
			state = "unreachable"
		}
		fmt.Printf("fdagate:   %s (%s) prefix=%s %s\n", v.Name, v.Base, v.Prefix, state)
	}

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "fdagate: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "fdagate: shutdown: %v\n", err)
	}
}

// runAnalyze implements -analyze: parse the series spec, load each ramp
// report (and optional metrics snapshots), and emit the capacity
// report.
func runAnalyze(spec, outPath string) error {
	var series []cluster.CapacitySeries
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.SplitN(part, "=", 2)
		if len(eq) != 2 {
			return fmt.Errorf("bad -analyze series %q (want N=rampreport.json[:metrics.json...])", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(eq[0]))
		if err != nil {
			return fmt.Errorf("bad replica count in %q: %w", part, err)
		}
		paths := strings.Split(eq[1], ":")
		s := cluster.CapacitySeries{Replicas: n}
		if err := readJSONFile(paths[0], &s.Report); err != nil {
			return fmt.Errorf("series %d: %w", n, err)
		}
		for _, mp := range paths[1:] {
			// Accept either a bare obs.Snap or a full fdaserve
			// /v1/metrics document with the snapshot under "telemetry".
			var doc struct {
				Telemetry  obs.Snap             `json:"telemetry"`
				Histograms []obs.HistogramValue `json:"histograms"`
			}
			if err := readJSONFile(mp, &doc); err != nil {
				return fmt.Errorf("series %d metrics %s: %w", n, mp, err)
			}
			snap := doc.Telemetry
			if len(snap.Histograms) == 0 {
				snap.Histograms = doc.Histograms
			}
			s.Snaps = append(s.Snaps, snap)
		}
		series = append(series, s)
	}
	rep, err := cluster.BuildCapacityReport(series)
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	for _, s := range rep.Series {
		fmt.Fprintf(os.Stderr, "fdagate: %d replica(s): knee %.1f req/s, peak %.1f req/s, speedup %.2fx, %.1f%% rejected, %d errors\n",
			s.Replicas, s.SaturationRPS, s.PeakAchievedRPS, s.Speedup, 100*s.RejectionRate, s.Errors)
	}
	return nil
}

func readJSONFile(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdagate:", err)
	os.Exit(1)
}
