// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON benchmark report, so the perf trajectory of the
// repository can be tracked across PRs (`make bench` writes
// BENCH_PR3.json with it). The input text passes through to stdout
// unchanged, so it composes with a pipe without hiding the report.
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson -out BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Op is the benchmark name without the Benchmark prefix and -P
	// GOMAXPROCS suffix.
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every custom b.ReportMetric unit (e.g. the
	// per-strategy comm medians the figure benches report).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Env pins the environment a report was produced in, so numbers from
// different machines or toolchains are never compared as if they were
// the same series. Everything comes from the running process and the
// build metadata the toolchain embeds — no flags to forget.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// VCSRevision/VCSModified identify the commit benchjson itself was
	// built from (the bench binaries are built from the same tree by
	// `make bench`).
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// envMeta collects Env from build info (split out for testing).
func envMeta(bi *debug.BuildInfo, ok bool) Env {
	e := Env{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if !ok || bi == nil {
		return e
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			e.VCSRevision = s.Value
		case "vcs.modified":
			e.VCSModified = s.Value == "true"
		}
	}
	return e
}

// Report is the top-level JSON document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Env        Env         `json:"env"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		in  = flag.String("in", "", "input file (default: stdin)")
		out = flag.String("out", "", "output JSON file (default: stdout only)")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parse(r, os.Stdout)
	if err != nil {
		fatal(err)
	}
	bi, ok := debug.ReadBuildInfo()
	report.Env = envMeta(bi, ok)
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatal(err)
	}
}

// parse scans bench output from r, echoing every line to echo.
func parse(r io.Reader, echo io.Writer) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GoOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GoArch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine decodes one result line:
//
//	BenchmarkFigure3-8  1  12345 ns/op  67 B/op  8 allocs/op  1.5 Sync_steps/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.Contains(line, "ns/op") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Op: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
