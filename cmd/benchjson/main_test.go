package main

import (
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Imaginary CPU @ 3.00GHz
BenchmarkTable2Summary-8   	       1	   1234567 ns/op
BenchmarkFigure3   	       2	 987654321 ns/op	    4096 B/op	      12 allocs/op	     0.125 LinearFDA_comm_MB/op	       210 LinearFDA_steps/op
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	var echo strings.Builder
	rep, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Fatal("input not passed through verbatim")
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "repro" || !strings.Contains(rep.CPU, "3.00GHz") {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Op != "Table2Summary" || b0.Iterations != 1 || b0.NsPerOp != 1234567 || b0.BytesPerOp != 0 {
		t.Fatalf("bench 0: %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Op != "Figure3" || b1.Iterations != 2 || b1.NsPerOp != 987654321 ||
		b1.BytesPerOp != 4096 || b1.AllocsPerOp != 12 {
		t.Fatalf("bench 1: %+v", b1)
	}
	if b1.Metrics["LinearFDA_comm_MB/op"] != 0.125 || b1.Metrics["LinearFDA_steps/op"] != 210 {
		t.Fatalf("custom metrics: %+v", b1.Metrics)
	}
}

func TestEnvMeta(t *testing.T) {
	bi := &debug.BuildInfo{}
	bi.Settings = []debug.BuildSetting{
		{Key: "vcs.revision", Value: "abcdef0123456789"},
		{Key: "vcs.modified", Value: "true"},
	}
	e := envMeta(bi, true)
	if e.GoVersion != runtime.Version() || e.GOMAXPROCS != runtime.GOMAXPROCS(0) || e.NumCPU != runtime.NumCPU() {
		t.Fatalf("env runtime fields: %+v", e)
	}
	if e.VCSRevision != "abcdef0123456789" || !e.VCSModified {
		t.Fatalf("env vcs fields: %+v", e)
	}
	// No build info: runtime fields still populate, VCS fields stay empty.
	e = envMeta(nil, false)
	if e.GoVersion == "" || e.VCSRevision != "" || e.VCSModified {
		t.Fatalf("fallback env: %+v", e)
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"Benchmarking something else",
		"BenchmarkX-8",
		"BenchmarkX-8 notanint 5 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
